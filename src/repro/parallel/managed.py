"""Self-reorganizing declustered store (dynamic α-quantile maintenance).

The paper's Section 4.3 sketches dynamic operation: the system counts how
many inserted points fall below/above each split value and reorganizes the
declustering when the ratio drifts past a threshold; the conclusion lists
"optimization of the reorganization process" as future work.

:class:`ManagedStore` implements that loop end to end on top of the
item-level store:

* inserts stream through an :class:`~repro.core.adaptive.AdaptiveSplitTracker`;
* when the tracker flags drift (and a minimum batch has arrived), the
  store recomputes the α-quantile split values, refits the declusterer
  (including recursive refinement if enabled) and redistributes the data;
* a reorganization log records when and why each rebuild happened.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.core.adaptive import AdaptiveSplitTracker
from repro.core.recursive import RecursiveDeclusterer
from repro.core.vertex_coloring import NearOptimalDeclusterer, colors_required
from repro.index.knn import Neighbor
from repro.parallel.engine import ParallelEngine, ParallelQueryResult
from repro.parallel.store import DeclusteredStore

__all__ = ["ManagedStore", "ReorganizationEvent"]


@dataclass(frozen=True)
class ReorganizationEvent:
    """One automatic rebuild of the declustering."""

    at_size: int
    worst_ratio: float
    imbalance_before: float
    imbalance_after: float


class ManagedStore:
    """A declustered store that keeps itself balanced under insertions.

    Parameters
    ----------
    dimension, num_disks:
        Feature-space dimensionality and disk count (defaults to the
        ``col`` color count).
    alpha, drift_threshold:
        Quantile target and tolerated below/above drift ratio per
        dimension before reorganizing.
    min_batch:
        Minimum number of inserts between reorganizations (prevents
        thrashing on small samples).
    recursive:
        Refit a :class:`~repro.core.recursive.RecursiveDeclusterer` on
        each reorganization (for clustered/correlated streams); otherwise
        the plain quantile-split :class:`NearOptimalDeclusterer` is used.
    """

    def __init__(
        self,
        dimension: int,
        num_disks: Optional[int] = None,
        alpha: float = 0.5,
        drift_threshold: float = 2.0,
        min_batch: int = 500,
        recursive: bool = False,
    ):
        if num_disks is None:
            num_disks = colors_required(dimension)
        self.dimension = dimension
        self.num_disks = num_disks
        self.alpha = alpha
        self.min_batch = min_batch
        self.recursive = recursive
        self.tracker = AdaptiveSplitTracker(
            dimension, alpha=alpha, threshold=drift_threshold
        )
        self.events: List[ReorganizationEvent] = []
        self._points = np.zeros((0, dimension))
        self._oids = np.zeros(0, dtype=np.int64)
        self._pending = 0
        self._store: Optional[DeclusteredStore] = None
        self._engine: Optional[ParallelEngine] = None
        self._rebuild()

    # ---------------------------------------------------------- plumbing

    def _make_declusterer(self):
        splits = self.tracker.split_values
        if self.recursive and len(self._points):
            declusterer = RecursiveDeclusterer(
                self.dimension, self.num_disks, alpha=self.alpha,
                split_values=splits,
            )
            declusterer.fit(self._points)
            return declusterer
        return NearOptimalDeclusterer(
            self.dimension, self.num_disks, split_values=splits
        )

    def _rebuild(self) -> None:
        self._store = DeclusteredStore(
            self._points, self._make_declusterer(), oids=self._oids
        )
        self._engine = ParallelEngine(self._store)

    def _imbalance(self) -> float:
        loads = self._store.disk_loads().astype(float)
        mean = loads.mean()
        return float(loads.max() / mean) if mean else 1.0

    # ------------------------------------------------------------ public

    def __len__(self) -> int:
        return len(self._points)

    @property
    def store(self) -> DeclusteredStore:
        """The current (possibly reorganized) declustered store."""
        return self._store

    @property
    def reorganizations(self) -> int:
        """How many reorganizations have run so far."""
        return len(self.events)

    def insert(self, point: Sequence[float], oid: int) -> None:
        """Insert a point; may trigger an automatic reorganization."""
        point = np.asarray(point, dtype=float).reshape(1, -1)
        if point.shape[1] != self.dimension:
            raise ValueError(
                f"point has dimension {point.shape[1]}, "
                f"expected {self.dimension}"
            )
        self.tracker.observe(point)
        self._points = np.vstack([self._points, point])
        self._oids = np.append(self._oids, oid)
        self._store.insert(point[0], oid)
        self._pending += 1
        if (
            self._pending >= self.min_batch
            and self.tracker.needs_reorganization()
        ):
            self.reorganize()

    def extend(self, points: np.ndarray,
               oids: Optional[Sequence[int]] = None) -> None:
        """Insert a batch (checking for reorganization once at the end)."""
        points = np.asarray(points, dtype=float)
        if oids is None:
            start = int(self._oids.max()) + 1 if len(self._oids) else 0
            oids = np.arange(start, start + len(points))
        self.tracker.observe(points)
        self._points = np.vstack([self._points, points])
        self._oids = np.append(self._oids, np.asarray(oids))
        self._pending += len(points)
        if (
            self._pending >= self.min_batch
            and self.tracker.needs_reorganization()
        ):
            self.reorganize()
        else:
            self._rebuild()

    def reorganize(self) -> ReorganizationEvent:
        """Force a reorganization now; returns the logged event."""
        worst = float(np.max(self.tracker.imbalance_ratios()))
        before = self._imbalance()
        if len(self._points):
            self.tracker.reorganize(self._points)
        self._rebuild()
        event = ReorganizationEvent(
            at_size=len(self._points),
            worst_ratio=worst,
            imbalance_before=before,
            imbalance_after=self._imbalance(),
        )
        self.events.append(event)
        self._pending = 0
        return event

    def query(self, query: Sequence[float], k: int = 1) -> ParallelQueryResult:
        """Parallel kNN over the current declustering."""
        return self._engine.query(query, k)

    def neighbors(self, query: Sequence[float], k: int = 1) -> List[Neighbor]:
        """Convenience: just the kNN result list."""
        return self.query(query, k).neighbors
