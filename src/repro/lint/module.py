"""Parsed-module model: dotted names, ASTs, and suppression comments.

Suppressions are real ``COMMENT`` tokens of the form::

    engine.charge(disk)  # repro-lint: disable=charge-through-buffer-pool

found with :mod:`tokenize` (a disable string inside a string literal is
*not* a suppression), and each one must actually suppress something —
the engine reports stale ones as ``unused-suppression`` findings.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, Optional

__all__ = ["ModuleInfo", "SUPPRESS_ALL", "module_name_for_path"]

#: ``disable=all`` silences every rule on the line.
SUPPRESS_ALL = "all"

_SUPPRESS_RE = re.compile(r"#\s*repro-lint:\s*disable=([\w,\- ]+)")

#: Path components that anchor a dotted module name.
_PACKAGE_ROOTS = ("repro", "tests", "benchmarks", "examples")


def module_name_for_path(path: Path) -> str:
    """Dotted module name for ``path``, anchored at a known package root.

    ``src/repro/core/bits.py`` -> ``repro.core.bits``; files outside any
    known root fall back to their stem so rules scoped to ``repro.*``
    skip them.
    """
    parts = list(path.parts)
    anchor = None
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] in _PACKAGE_ROOTS:
            anchor = index
            break
    if anchor is None:
        return path.stem
    dotted = parts[anchor:-1] + [path.stem]
    if dotted[-1] == "__init__":
        dotted = dotted[:-1]
    return ".".join(dotted)


def _suppressions(source: str) -> Dict[int, FrozenSet[str]]:
    """Line number -> rule names disabled on that line."""
    table: Dict[int, FrozenSet[str]] = {}
    reader = io.StringIO(source).readline
    try:
        tokens = list(tokenize.generate_tokens(reader))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return table
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _SUPPRESS_RE.search(token.string)
        if match is None:
            continue
        rules = frozenset(
            name.strip()
            for name in match.group(1).replace(" ", ",").split(",")
            if name.strip()
        )
        if rules:
            table[token.start[0]] = rules
    return table


@dataclass
class ModuleInfo:
    """One parsed source file plus everything rules need to know."""

    path: Path
    display_path: str
    name: str
    tree: ast.Module
    suppressions: Dict[int, FrozenSet[str]] = field(default_factory=dict)

    @classmethod
    def parse(cls, path: Path, display_path: Optional[str] = None) -> "ModuleInfo":
        """Parse ``path``; raises ``SyntaxError`` on unparsable source."""
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
        return cls(
            path=path,
            display_path=display_path or str(path),
            name=module_name_for_path(path),
            tree=tree,
            suppressions=_suppressions(source),
        )

    def suppresses(self, line: int, rule: str) -> bool:
        """True when a comment on ``line`` disables ``rule`` (or all)."""
        rules = self.suppressions.get(line)
        return rules is not None and (rule in rules or SUPPRESS_ALL in rules)

    @classmethod
    def locate_sibling(
        cls, module: "ModuleInfo", dotted: str
    ) -> Optional["ModuleInfo"]:
        """Load ``dotted`` (e.g. ``repro.registry``) from the same tree
        ``module`` came from, for cross-module rules run on a subset of
        files that does not include the registry itself."""
        parts = dotted.split(".")
        root = parts[0]
        for parent in module.path.parents:
            if parent.name == root:
                candidate = parent.joinpath(*parts[1:]).with_suffix(".py")
                if candidate.is_file():
                    try:
                        return cls.parse(candidate)
                    except SyntaxError:
                        return None
        return None
