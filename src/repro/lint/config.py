"""Configuration for the repo-specific linter.

Every rule has a *scope* (dotted-module prefixes it applies to) and an
*exempt* list (prefixes inside the scope that are sanctioned).  The
defaults encode this repository's layout — e.g. only the buffer-pool
engine modules may charge a :class:`~repro.parallel.disks.DiskArray` —
and tests override them to point rules at fixture trees.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Mapping, Optional, Tuple

__all__ = ["LintConfig", "DEFAULT_CONFIG", "module_matches"]


#: ``numpy.random`` attributes that are deterministic-by-construction and
#: therefore allowed: creating a seeded generator is the sanctioned way in.
_RNG_ALLOWED = frozenset(
    {
        "default_rng",
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "Philox",
        "MT19937",
        "SFC64",
    }
)


def module_matches(module: str, prefixes: Tuple[str, ...]) -> bool:
    """True if ``module`` equals or lives under any dotted ``prefix``."""
    return any(
        module == prefix or module.startswith(prefix + ".")
        for prefix in prefixes
    )


@dataclass(frozen=True)
class LintConfig:
    """Tunable knobs; all defaults describe the live repository.

    Parameters
    ----------
    enabled:
        Rule names to run; ``None`` runs every registered rule.
    scopes / exempt:
        Per-rule overrides of the rule's ``default_scope`` /
        ``default_exempt`` dotted-module prefixes.
    rng_allowed:
        ``numpy.random`` attribute names exempt from ``seeded-rng-only``.
    registry_module:
        Dotted name of the module holding the scheme registry that
        ``registry-completeness`` and ``no-unvalidated-scheme-string``
        check against.
    scheme_suffix:
        Class-name suffix identifying a declustering scheme definition.
    abstract_schemes:
        Scheme class names that are abstract bases, not registrable.
    catalogue_module:
        Dotted name of the module declaring ``METRIC_CATALOGUE``, used
        by ``metric-in-catalogue``.
    entry_point_names:
        Method names treated as engine/simulator entry points when
        ``no-uncharged-disk-read`` reports a reaching call chain.
    docstring_error_scope:
        Module prefixes where ``no-missing-public-docstring`` escalates
        from warn to error (the lint/sanitizer dogfood scope).
    virtual_time_roots:
        Function qualnames ``no-wall-clock-in-virtual-time`` treats as
        virtual-time entry points (simulator ``run`` methods are added
        automatically by class-name convention).
    single_writer_attr:
        Class-attribute name holding the single-writer annotation that
        sanctions attributes for ``async-atomicity-violation`` and
        ``shared-state-without-lock``.
    closeable_types:
        Class names whose constructor returns a resource that
        ``resource-leak`` requires closed on every path (project page
        stores, the streaming builder's spill-run temp files, plus the
        stdlib handles they wrap).
    spawn_unsafe_types:
        Class names ``spawn-unsafe-capture`` refuses to see pickled
        into a worker process (they own mmap/file handles that do not
        survive a spawn).
    """

    enabled: Optional[FrozenSet[str]] = None
    scopes: Mapping[str, Tuple[str, ...]] = field(default_factory=dict)
    exempt: Mapping[str, Tuple[str, ...]] = field(default_factory=dict)
    rng_allowed: FrozenSet[str] = _RNG_ALLOWED
    registry_module: str = "repro.registry"
    scheme_suffix: str = "Declusterer"
    abstract_schemes: Tuple[str, ...] = ("Declusterer", "BucketDeclusterer")
    catalogue_module: str = "repro.obs.metrics"
    entry_point_names: Tuple[str, ...] = ("query", "query_batch", "run")
    docstring_error_scope: Tuple[str, ...] = ("repro.lint", "repro.sanitize")
    virtual_time_roots: Tuple[str, ...] = (
        "repro.serve.service.QueryService.run_trace",
        "repro.serve.service.QueryService.run_stream",
        "repro.serve.loadgen.run_closed_loop",
        "repro.serve.loadgen.sweep",
    )
    single_writer_attr: str = "_SINGLE_WRITER"
    closeable_types: Tuple[str, ...] = (
        "PageFile",
        "PageFileWriter",
        "MmapStore",
        "SharedMemory",
        "SpillFile",
    )
    spawn_unsafe_types: Tuple[str, ...] = (
        "PageFile",
        "PageFileWriter",
        "MmapStore",
    )

    def scope_for(self, rule_name: str, default: Tuple[str, ...]) -> Tuple[str, ...]:
        """The scope prefixes for ``rule_name`` (override or default)."""
        return tuple(self.scopes.get(rule_name, default))

    def exempt_for(self, rule_name: str, default: Tuple[str, ...]) -> Tuple[str, ...]:
        """The exempt prefixes for ``rule_name`` (override or default)."""
        return tuple(self.exempt.get(rule_name, default))

    def rule_enabled(self, rule_name: str) -> bool:
        """True when ``rule_name`` should run under this config."""
        return self.enabled is None or rule_name in self.enabled


DEFAULT_CONFIG = LintConfig()
