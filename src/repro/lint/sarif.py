"""SARIF 2.1.0 rendering for lint and sanitizer findings.

`SARIF <https://docs.oasis-open.org/sarif/sarif/v2.1.0/sarif-v2.1.0.html>`_
is the interchange format GitHub code scanning ingests; ``repro.lint
--format sarif`` and ``repro.sanitize --format sarif`` both emit one
``run`` built here from the shared :class:`~repro.lint.findings.Finding`
type, so CI uploads a single artifact shape regardless of which layer
produced the result.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.lint.findings import Finding

__all__ = ["SARIF_SCHEMA_URI", "SARIF_VERSION", "sarif_run", "render_sarif"]

SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
SARIF_VERSION = "2.1.0"

_LEVEL_FOR_SEVERITY = {"error": "error", "warn": "warning"}


def _result(finding: Finding) -> Dict[str, Any]:
    """One SARIF ``result`` object for ``finding``."""
    return {
        "ruleId": finding.rule,
        "level": _LEVEL_FOR_SEVERITY.get(finding.severity, "warning"),
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path.replace("\\", "/"),
                        "uriBaseId": "%SRCROOT%",
                    },
                    "region": {"startLine": max(finding.line, 1)},
                }
            }
        ],
        "partialFingerprints": {
            "reproLintFingerprint/v1": finding.fingerprint(),
        },
    }


def sarif_run(
    findings: Sequence[Finding],
    tool_name: str,
    rule_metadata: Optional[Mapping[str, str]] = None,
) -> Dict[str, Any]:
    """One SARIF ``run`` object: tool descriptor plus results.

    ``rule_metadata`` maps rule name to its one-line summary; every rule
    referenced by a finding is included in the driver's rule table even
    when no summary is known (GitHub requires ``ruleId`` referents).
    """
    metadata = dict(rule_metadata or {})
    for finding in findings:
        metadata.setdefault(finding.rule, "")
    rules: List[Dict[str, Any]] = [
        {
            "id": name,
            "shortDescription": {"text": summary or name},
        }
        for name, summary in sorted(metadata.items())
    ]
    return {
        "tool": {
            "driver": {
                "name": tool_name,
                "informationUri": "https://example.invalid/repro",
                "rules": rules,
            }
        },
        "results": [_result(finding) for finding in sorted(findings)],
        "columnKind": "utf16CodeUnits",
    }


def render_sarif(
    findings: Sequence[Finding],
    tool_name: str = "repro.lint",
    rule_metadata: Optional[Mapping[str, str]] = None,
) -> str:
    """Full SARIF 2.1.0 log document as a JSON string."""
    document = {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [sarif_run(findings, tool_name, rule_metadata)],
    }
    return json.dumps(document, indent=2, sort_keys=False)
