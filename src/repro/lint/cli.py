"""``python -m repro.lint`` — run the repo invariant checker.

Exit status 0 means every linted file upholds every error-severity
invariant (warnings are reported but never fail the run); 1 means error
findings were reported; 2 means bad usage.  ``--format=json`` emits a
machine-readable document for tooling.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.lint.engine import run_lint
from repro.lint.findings import error_findings, render_json, render_text
from repro.lint.rules import RULES

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.lint",
        description="Static checker for this repository's paper-level "
        "invariants (seeded RNG, core-bits usage, buffer-pool charging, "
        "float equality, library prints, scheme registry completeness).",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list the registered rules and exit",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for rule in RULES:
            print(f"{rule.name:>26}  {rule.summary}")
        return 0
    findings = run_lint(args.paths)
    if args.format == "json":
        print(render_json(findings))
    elif findings:
        print(render_text(findings))
    else:
        print("0 findings")
    return 1 if error_findings(findings) else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
