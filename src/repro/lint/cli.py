"""``python -m repro.lint`` — run the repo invariant checker.

Exit status 0 means every linted file upholds every error-severity
invariant (warnings are reported but never fail the run); 1 means error
findings were reported; 2 means bad usage.  ``--format=json`` emits a
machine-readable document for tooling; ``--format=sarif`` emits SARIF
2.1.0 for GitHub code scanning.

Baselines (``lint-baseline.json``, schema ``repro.lint-baseline/v1``)
let CI fail only on *new* findings: ``--baseline FILE`` subtracts the
recorded fingerprints before rendering and exit-status evaluation, and
``--update-baseline FILE`` rewrites the file from the current tree.

``--jobs N`` fans the per-file rule passes out over N worker threads
(cross-module passes stay single-threaded); ``--select`` narrows the
run to named rules or rule groups (``concurrency``, ``dataflow``,
``lifetime``); ``--time-budget SECONDS`` turns the run's wall-clock
into a gate — the elapsed time is reported on stderr and exceeding the
budget fails the run even when the tree is clean.  ``--explain RULE``
prints one rule's documentation: its rationale (the class docstring)
plus a bad/good example pair from the rule's metadata.
"""

from __future__ import annotations

import argparse
import inspect
import sys
import textwrap
import time
from pathlib import Path
from typing import List, Optional, Sequence, Set

from repro.lint.baseline import (
    load_baseline,
    subtract_baseline,
    write_baseline,
)
from repro.lint.concurrency import CONCURRENCY_RULES
from repro.lint.config import DEFAULT_CONFIG, LintConfig
from repro.lint.dataflow import DATAFLOW_RULES
from repro.lint.engine import (
    ALL_RULES,
    all_rule_names,
    run_lint,
    rule_summaries,
)
from repro.lint.findings import (
    Finding,
    error_findings,
    render_json,
    render_text,
)
from repro.lint.lifetime import LIFETIME_RULES
from repro.lint.sarif import render_sarif

__all__ = ["main", "build_parser", "RULE_GROUPS"]

#: Named rule groups ``--select`` expands (alongside individual rule
#: names): run just the async-safety layer, just the dataflow layer, or
#: just the resource-lifetime/process-safety layer.
RULE_GROUPS = {
    "concurrency": tuple(rule.name for rule in CONCURRENCY_RULES),
    "dataflow": tuple(rule.name for rule in DATAFLOW_RULES),
    "lifetime": tuple(rule.name for rule in LIFETIME_RULES),
}


def build_parser() -> argparse.ArgumentParser:
    """The ``repro.lint`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro.lint",
        description="Static checker for this repository's paper-level "
        "invariants (seeded RNG, core-bits usage, buffer-pool charging, "
        "float equality, library prints, scheme registry completeness, "
        "cross-module dataflow rules over the project call graph, "
        "async-safety rules for the serving layer, and path-sensitive "
        "resource-lifetime/process-safety rules for the out-of-core "
        "layer).",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--baseline", type=Path, default=None, metavar="FILE",
        help="subtract the findings recorded in FILE before reporting "
        "(fail only on new findings)",
    )
    parser.add_argument(
        "--update-baseline", type=Path, default=None, metavar="FILE",
        help="rewrite FILE from the current findings and exit 0",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker threads for the per-file rule passes (default: 1; "
        "cross-module passes always run single-threaded)",
    )
    parser.add_argument(
        "--select", default=None, metavar="RULES",
        help="comma-separated rule names and/or groups "
        f"({', '.join(sorted(RULE_GROUPS))}) to run; default: all rules",
    )
    parser.add_argument(
        "--time-budget", type=float, default=None, metavar="SECONDS",
        help="fail the run (exit 1) when linting takes longer than "
        "SECONDS of wall-clock; elapsed time is reported on stderr",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list the registered rules and exit",
    )
    parser.add_argument(
        "--explain", default=None, metavar="RULE",
        help="print RULE's documentation — rationale plus a bad/good "
        "example pair — and exit",
    )
    return parser


def _explain(name: str) -> int:
    """Print one rule's doc, rationale and examples; exit status."""
    rule = next((cls for cls in ALL_RULES if cls.name == name), None)
    if rule is None:
        print(
            f"repro.lint: --explain {name!r} names no known rule "
            f"(see --list-rules)",
            file=sys.stderr,
        )
        return 2
    group = next(
        (g for g, members in sorted(RULE_GROUPS.items())
         if rule.name in members),
        "core",
    )
    print(f"{rule.name}  [{rule.severity}, group: {group}]")
    print(f"  {rule.summary}")
    print()
    print(f"  scope:  {', '.join(rule.default_scope)}")
    if rule.default_exempt:
        print(f"  exempt: {', '.join(rule.default_exempt)}")
    rationale = inspect.cleandoc(rule.__doc__ or "")
    if rationale:
        print()
        print("Why:")
        print(textwrap.indent(textwrap.fill(rationale, width=72), "  "))
    if rule.example_bad:
        print()
        print("Bad:")
        print(textwrap.indent(rule.example_bad.rstrip(), "  "))
    if rule.example_good:
        print()
        print("Good:")
        print(textwrap.indent(rule.example_good.rstrip(), "  "))
    print()
    print(
        f"Suppress a single sanctioned line with: "
        f"# repro-lint: disable={rule.name}"
    )
    return 0


def _selected_config(selection: str) -> Optional[LintConfig]:
    """A config enabling only the ``--select`` rules; None on bad names."""
    known = set(all_rule_names())
    enabled: Set[str] = set()
    for token in selection.split(","):
        token = token.strip()
        if not token:
            continue
        if token in RULE_GROUPS:
            enabled.update(RULE_GROUPS[token])
        elif token in known:
            enabled.add(token)
        else:
            return None
    if not enabled:
        return None
    return LintConfig(enabled=frozenset(enabled))


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit status."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.explain is not None:
        return _explain(args.explain)
    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.name:>28}  {rule.summary}")
        return 0
    if args.jobs < 1:
        print(f"repro.lint: --jobs must be >= 1, got {args.jobs}",
              file=sys.stderr)
        return 2
    config = DEFAULT_CONFIG
    if args.select is not None:
        selected = _selected_config(args.select)
        if selected is None:
            print(
                f"repro.lint: --select {args.select!r} names no known "
                f"rule or group (groups: {', '.join(sorted(RULE_GROUPS))})",
                file=sys.stderr,
            )
            return 2
        config = selected
    started = time.monotonic()
    findings: List[Finding] = run_lint(args.paths, config, jobs=args.jobs)
    elapsed = time.monotonic() - started
    if args.update_baseline is not None:
        write_baseline(args.update_baseline, findings)
        print(
            f"baseline {args.update_baseline} updated "
            f"({len(findings)} findings recorded)"
        )
        return 0
    if args.baseline is not None:
        try:
            baseline = load_baseline(args.baseline)
        except (OSError, ValueError) as error:
            print(f"repro.lint: {error}", file=sys.stderr)
            return 2
        findings = subtract_baseline(findings, baseline)
    if args.format == "sarif":
        print(render_sarif(findings, "repro.lint", rule_summaries()))
    elif args.format == "json":
        print(render_json(findings))
    elif findings:
        print(render_text(findings))
    else:
        print("0 findings")
    over_budget = False
    if args.time_budget is not None:
        over_budget = elapsed > args.time_budget
        verdict = "OVER BUDGET" if over_budget else "within budget"
        # stderr so SARIF/JSON documents on stdout stay parseable.
        print(
            f"repro.lint: completed in {elapsed:.2f}s "
            f"(budget {args.time_budget:.2f}s, {verdict}, "
            f"jobs={args.jobs})",
            file=sys.stderr,
        )
    return 1 if error_findings(findings) or over_budget else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
