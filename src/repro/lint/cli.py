"""``python -m repro.lint`` — run the repo invariant checker.

Exit status 0 means every linted file upholds every error-severity
invariant (warnings are reported but never fail the run); 1 means error
findings were reported; 2 means bad usage.  ``--format=json`` emits a
machine-readable document for tooling; ``--format=sarif`` emits SARIF
2.1.0 for GitHub code scanning.

Baselines (``lint-baseline.json``, schema ``repro.lint-baseline/v1``)
let CI fail only on *new* findings: ``--baseline FILE`` subtracts the
recorded fingerprints before rendering and exit-status evaluation, and
``--update-baseline FILE`` rewrites the file from the current tree.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.lint.baseline import (
    load_baseline,
    subtract_baseline,
    write_baseline,
)
from repro.lint.engine import ALL_RULES, run_lint, rule_summaries
from repro.lint.findings import (
    Finding,
    error_findings,
    render_json,
    render_text,
)
from repro.lint.sarif import render_sarif

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The ``repro.lint`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro.lint",
        description="Static checker for this repository's paper-level "
        "invariants (seeded RNG, core-bits usage, buffer-pool charging, "
        "float equality, library prints, scheme registry completeness, "
        "plus cross-module dataflow rules over the project call graph).",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--baseline", type=Path, default=None, metavar="FILE",
        help="subtract the findings recorded in FILE before reporting "
        "(fail only on new findings)",
    )
    parser.add_argument(
        "--update-baseline", type=Path, default=None, metavar="FILE",
        help="rewrite FILE from the current findings and exit 0",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list the registered rules and exit",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit status."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.name:>28}  {rule.summary}")
        return 0
    findings: List[Finding] = run_lint(args.paths)
    if args.update_baseline is not None:
        write_baseline(args.update_baseline, findings)
        print(
            f"baseline {args.update_baseline} updated "
            f"({len(findings)} findings recorded)"
        )
        return 0
    if args.baseline is not None:
        try:
            baseline = load_baseline(args.baseline)
        except (OSError, ValueError) as error:
            print(f"repro.lint: {error}", file=sys.stderr)
            return 2
        findings = subtract_baseline(findings, baseline)
    if args.format == "sarif":
        print(render_sarif(findings, "repro.lint", rule_summaries()))
    elif args.format == "json":
        print(render_json(findings))
    elif findings:
        print(render_text(findings))
    else:
        print("0 findings")
    return 1 if error_findings(findings) else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
