"""Statement-level control-flow graphs for path-sensitive lint rules.

The lifetime rules (:mod:`repro.lint.lifetime`) must answer *path*
questions — "is this ``PageFile`` closed on **every** path to function
exit, including the path where a later call raises?" — which the purely
lexical walks used elsewhere in the linter cannot express.  This module
builds a small, deliberately simple CFG per function body:

* every *statement* is a node (functions in this repository are small,
  so basic blocks buy nothing);
* ``entry`` / ``exit`` pseudo-nodes bracket the body, and structural
  ``join`` nodes glue branches back together without carrying code;
* normal successors (:attr:`CFGNode.succs`) are distinguished from
  *exceptional* successors (:attr:`CFGNode.exc_succs`) — edges taken
  only when the statement raises — so an analysis can report "leaks on
  the exception path" separately from "leaks on straight-line flow";
* a statement is considered able to raise when its own header contains
  a call (or is ``raise`` / ``assert`` / a ``with`` header, whose
  context-manager protocol can always fail) — attribute and subscript
  accesses are deliberately not exception sources, keeping the graph
  quiet.

Over-approximations, all in the safe (extra-edges) direction:

* a ``try``/``finally`` body is built with **two copies** of the
  ``finally`` suite: the *normal* copy flows on to the statement after
  the ``try``, the *abrupt* copy (entered from exceptions, ``return``,
  ``break``, ``continue``) flows to the enclosing exception target,
  function exit, and any redirected loop targets — so a ``finally``
  that closes a resource sanctions both entry modes, while an empty
  ``finally`` still lets the exception path escape;
* exceptions raised in a ``try`` body get edges to *every* handler plus
  the uncaught path (no exception-type matching);
* a ``with`` body's exceptions route through a synthetic ``with-exit``
  node (the ``__exit__`` call) before propagating.

Spurious paths can therefore exist, but no real path is ever missing —
the right failure mode for rules that must never *hide* a leak.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Set, Tuple

__all__ = ["CFG", "CFGNode", "build_cfg"]

_FUNC_TYPES = (ast.FunctionDef, ast.AsyncFunctionDef)

#: Statement kinds that never transfer control abnormally by themselves.
_SIMPLE_TYPES = (
    ast.Expr,
    ast.Assign,
    ast.AugAssign,
    ast.AnnAssign,
    ast.Assert,
    ast.Delete,
    ast.Pass,
    ast.Import,
    ast.ImportFrom,
    ast.Global,
    ast.Nonlocal,
)


@dataclass
class CFGNode:
    """One statement (or pseudo-statement) of a function's flow graph.

    ``kind`` is ``"entry"``, ``"exit"``, ``"join"`` (structural glue,
    no code), ``"stmt"`` (``stmt`` holds the AST statement — for
    compound statements only the *header* belongs to the node), or
    ``"with-exit"`` (the synthetic ``__exit__`` of a ``with`` block;
    ``stmt`` holds the ``ast.With``).  ``succs`` are normal-flow
    successors; ``exc_succs`` are taken only when the statement raises.
    """

    index: int
    kind: str
    stmt: Optional[ast.AST] = None
    succs: Set[int] = field(default_factory=set)
    exc_succs: Set[int] = field(default_factory=set)


class CFG:
    """A built control-flow graph: ``nodes`` plus ``entry``/``exit``.

    Traverse with :meth:`successors`, which yields ``(index,
    via_exception)`` pairs so path searches can track whether a path
    needed an exception to exist.
    """

    def __init__(self) -> None:
        self.nodes: List[CFGNode] = []
        self.entry = self._add("entry")
        self.exit = self._add("exit")

    def _add(self, kind: str, stmt: Optional[ast.AST] = None) -> int:
        index = len(self.nodes)
        self.nodes.append(CFGNode(index=index, kind=kind, stmt=stmt))
        return index

    def successors(self, index: int) -> List[Tuple[int, bool]]:
        """``(successor, via_exception)`` pairs of one node."""
        node = self.nodes[index]
        return [(succ, False) for succ in sorted(node.succs)] + [
            (succ, True) for succ in sorted(node.exc_succs)
        ]


@dataclass(frozen=True)
class _Frame:
    """Control-transfer targets active while building one suite."""

    exc: int
    ret: int
    brk: Optional[int] = None
    cont: Optional[int] = None


def _header_can_raise(stmt: ast.stmt) -> bool:
    """True when the statement's *own* evaluation may raise.

    Compound statements contribute only their header expressions (an
    ``if`` test, a ``for`` iterable, ...), never their bodies — the
    bodies get their own nodes.
    """
    if isinstance(stmt, (ast.Raise, ast.Assert)):
        return True
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return True  # __enter__ / context evaluation can always fail
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return True  # the iterator protocol can raise
    headers: List[ast.AST] = []
    if isinstance(stmt, (ast.If, ast.While)):
        headers = [stmt.test]
    elif isinstance(stmt, ast.Return):
        headers = [stmt.value] if stmt.value is not None else []
    elif isinstance(stmt, _SIMPLE_TYPES):
        headers = [stmt]
    else:  # Break/Continue/def/class headers: nothing evaluable
        match_cls = getattr(ast, "Match", None)
        if match_cls is not None and isinstance(stmt, match_cls):
            headers = [stmt.subject]
    for header in headers:
        for node in ast.walk(header):
            if isinstance(node, _FUNC_TYPES):
                continue
            if isinstance(node, (ast.Call, ast.Await)):
                return True
    return False


class _Builder:
    """Recursive-descent CFG construction over one function body."""

    def __init__(self, cfg: CFG) -> None:
        self.cfg = cfg

    # ------------------------------------------------------------ plumbing

    def _connect(self, preds: Sequence[int], target: int) -> None:
        for pred in preds:
            self.cfg.nodes[pred].succs.add(target)

    def _stmt_node(self, stmt: ast.stmt, frame: _Frame) -> int:
        index = self.cfg._add("stmt", stmt)
        if _header_can_raise(stmt):
            self.cfg.nodes[index].exc_succs.add(frame.exc)
        return index

    # -------------------------------------------------------------- suites

    def build_body(
        self, body: Sequence[ast.stmt], preds: List[int], frame: _Frame
    ) -> List[int]:
        """Build one suite; returns its open normal exits."""
        for stmt in body:
            if not preds:
                break  # unreachable tail (after return/raise/...)
            preds = self._build_stmt(stmt, preds, frame)
        return preds

    def _build_stmt(
        self, stmt: ast.stmt, preds: List[int], frame: _Frame
    ) -> List[int]:
        if isinstance(stmt, ast.If):
            return self._build_if(stmt, preds, frame)
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self._build_loop(stmt, preds, frame)
        if isinstance(stmt, ast.Try):
            return self._build_try(stmt, preds, frame)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._build_with(stmt, preds, frame)
        match_cls = getattr(ast, "Match", None)
        if match_cls is not None and isinstance(stmt, match_cls):
            return self._build_match(stmt, preds, frame)
        node = self._stmt_node(stmt, frame)
        self._connect(preds, node)
        if isinstance(stmt, ast.Return):
            self.cfg.nodes[node].succs.add(frame.ret)
            return []
        if isinstance(stmt, ast.Raise):
            self.cfg.nodes[node].exc_succs.add(frame.exc)
            return []
        if isinstance(stmt, ast.Break):
            target = frame.brk if frame.brk is not None else self.cfg.exit
            self.cfg.nodes[node].succs.add(target)
            return []
        if isinstance(stmt, ast.Continue):
            target = frame.cont if frame.cont is not None else self.cfg.exit
            self.cfg.nodes[node].succs.add(target)
            return []
        return [node]

    def _build_if(
        self, stmt: ast.If, preds: List[int], frame: _Frame
    ) -> List[int]:
        test = self._stmt_node(stmt, frame)
        self._connect(preds, test)
        exits = self.build_body(stmt.body, [test], frame)
        if stmt.orelse:
            exits += self.build_body(stmt.orelse, [test], frame)
        else:
            exits.append(test)
        return exits

    def _build_loop(
        self, stmt: ast.stmt, preds: List[int], frame: _Frame
    ) -> List[int]:
        head = self._stmt_node(stmt, frame)
        self._connect(preds, head)
        after = self.cfg._add("join")
        self.cfg.nodes[head].succs.add(after)  # zero iterations / test false
        inner = _Frame(exc=frame.exc, ret=frame.ret, brk=after, cont=head)
        body: Sequence[ast.stmt] = stmt.body  # type: ignore[attr-defined]
        body_exits = self.build_body(body, [head], inner)
        self._connect(body_exits, head)
        orelse: Sequence[ast.stmt] = getattr(stmt, "orelse", [])
        if orelse:
            else_exits = self.build_body(orelse, [head], frame)
            self._connect(else_exits, after)
        return [after]

    def _build_with(
        self, stmt: ast.stmt, preds: List[int], frame: _Frame
    ) -> List[int]:
        head = self._stmt_node(stmt, frame)
        self._connect(preds, head)
        with_exit = self.cfg._add("with-exit", stmt)
        self.cfg.nodes[with_exit].exc_succs.add(frame.exc)
        inner = _Frame(
            exc=with_exit, ret=frame.ret, brk=frame.brk, cont=frame.cont
        )
        body: Sequence[ast.stmt] = stmt.body  # type: ignore[attr-defined]
        body_exits = self.build_body(body, [head], inner)
        self._connect(body_exits, with_exit)
        return [with_exit]

    def _build_match(
        self, stmt: ast.AST, preds: List[int], frame: _Frame
    ) -> List[int]:
        subject = self._stmt_node(stmt, frame)  # type: ignore[arg-type]
        self._connect(preds, subject)
        exits: List[int] = [subject]  # no case may match
        for case in stmt.cases:  # type: ignore[attr-defined]
            exits += self.build_body(case.body, [subject], frame)
        return exits

    def _build_try(
        self, stmt: ast.Try, preds: List[int], frame: _Frame
    ) -> List[int]:
        if stmt.finalbody:
            # Abrupt copy: entered on exceptions and on return/break/
            # continue out of the protected region; resumes the abrupt
            # transfer afterwards (over-approximated as *all* redirected
            # targets plus the uncaught-exception path).
            fin_abrupt = self.cfg._add("join")
            abrupt_exits = self.build_body(stmt.finalbody, [fin_abrupt], frame)
            for index in abrupt_exits:
                self.cfg.nodes[index].exc_succs.add(frame.exc)
                self.cfg.nodes[index].succs.add(frame.ret)
                if frame.brk is not None:
                    self.cfg.nodes[index].succs.add(frame.brk)
                if frame.cont is not None:
                    self.cfg.nodes[index].succs.add(frame.cont)
            inner_exc: int = fin_abrupt
            inner = _Frame(
                exc=fin_abrupt,
                ret=fin_abrupt,
                brk=fin_abrupt if frame.brk is not None else None,
                cont=fin_abrupt if frame.cont is not None else None,
            )
        else:
            inner_exc = frame.exc
            inner = frame

        handler_frame = inner
        if stmt.handlers:
            # Exceptions in the body fan out to every handler plus the
            # uncaught path (no type matching — extra edges, never
            # missing ones).
            dispatch = self.cfg._add("join")
            self.cfg.nodes[dispatch].succs.add(inner_exc)
            body_frame = _Frame(
                exc=dispatch, ret=inner.ret, brk=inner.brk, cont=inner.cont
            )
        else:
            dispatch = -1
            body_frame = inner

        body_exits = self.build_body(stmt.body, preds, body_frame)
        if stmt.orelse:
            body_exits = self.build_body(stmt.orelse, body_exits, inner)

        open_exits = list(body_exits)
        for handler in stmt.handlers:
            head = self.cfg._add("stmt", handler)
            self.cfg.nodes[dispatch].succs.add(head)
            open_exits += self.build_body(handler.body, [head], handler_frame)

        if stmt.finalbody:
            fin_normal = self.cfg._add("join")
            self._connect(open_exits, fin_normal)
            return self.build_body(stmt.finalbody, [fin_normal], frame)
        return open_exits


def build_cfg(func: ast.AST) -> CFG:
    """Build the statement-level CFG of one function body.

    ``func`` is an ``ast.FunctionDef`` / ``ast.AsyncFunctionDef``;
    nested function definitions are single opaque statements (they get
    their own graphs).  The returned graph always routes every path to
    :attr:`CFG.exit`.
    """
    cfg = CFG()
    builder = _Builder(cfg)
    frame = _Frame(exc=cfg.exit, ret=cfg.exit)
    body: Sequence[ast.stmt] = func.body  # type: ignore[attr-defined]
    exits = builder.build_body(body, [cfg.entry], frame)
    builder._connect(exits, cfg.exit)
    return cfg
