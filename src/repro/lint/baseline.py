"""Finding baselines: fail CI only on *new* findings.

A baseline file (``lint-baseline.json``, schema
``repro.lint-baseline/v1``) records a fingerprint multiset of the
findings present when it was last updated.  ``--baseline`` subtracts
those from the current run so pre-existing debt does not block a PR,
while ``--update-baseline`` rewrites the file from the current tree.

Fingerprints hash ``path | rule | severity | message`` — deliberately
*not* the line number — so unrelated edits that shift a finding up or
down a file do not resurrect it.  Duplicate fingerprints are counted:
two identical findings with one baselined still report the second.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from repro.lint.findings import Finding

__all__ = [
    "BASELINE_SCHEMA",
    "load_baseline",
    "render_baseline",
    "write_baseline",
    "subtract_baseline",
]

BASELINE_SCHEMA = "repro.lint-baseline/v1"


def load_baseline(path: Path) -> Counter:
    """Fingerprint multiset read from a baseline file.

    Raises ``ValueError`` on a malformed or wrong-schema document so a
    truncated baseline fails loudly instead of silently admitting every
    finding as "new".
    """
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ValueError(f"baseline {path} is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("schema") != BASELINE_SCHEMA:
        raise ValueError(
            f"baseline {path} does not declare schema {BASELINE_SCHEMA!r}"
        )
    entries = payload.get("findings", [])
    if not isinstance(entries, list):
        raise ValueError(f"baseline {path}: 'findings' must be a list")
    counts: Counter = Counter()
    for entry in entries:
        if not isinstance(entry, dict) or "fingerprint" not in entry:
            raise ValueError(
                f"baseline {path}: every finding needs a 'fingerprint'"
            )
        counts[str(entry["fingerprint"])] += int(entry.get("count", 1))
    return counts


def render_baseline(findings: Sequence[Finding]) -> str:
    """Baseline document (JSON string) for the given findings.

    Entries carry the human-readable context (path/rule/message) next to
    the fingerprint so reviewers can audit what debt a baseline admits.
    """
    counts: Dict[Tuple[str, str, str, str], int] = {}
    for finding in sorted(findings):
        key = (finding.path, finding.rule, finding.severity, finding.message)
        counts[key] = counts.get(key, 0) + 1
    entries: List[Dict[str, object]] = []
    for (path, rule, severity, message), count in sorted(counts.items()):
        probe = Finding(
            path=path, line=0, rule=rule, message=message, severity=severity
        )
        entry: Dict[str, object] = {
            "fingerprint": probe.fingerprint(),
            "path": path,
            "rule": rule,
            "severity": severity,
            "message": message,
        }
        if count != 1:
            entry["count"] = count
        entries.append(entry)
    document = {"schema": BASELINE_SCHEMA, "findings": entries}
    return json.dumps(document, indent=2) + "\n"


def write_baseline(path: Path, findings: Sequence[Finding]) -> None:
    """Write (or rewrite) the baseline file for ``findings``."""
    path.write_text(render_baseline(findings), encoding="utf-8")


def subtract_baseline(
    findings: Sequence[Finding], baseline: Counter
) -> List[Finding]:
    """Findings not covered by the baseline multiset.

    Subtraction is per-fingerprint with multiplicity: a baseline entry
    with ``count: 2`` absorbs at most two identical findings.
    """
    remaining = Counter(baseline)
    fresh: List[Finding] = []
    for finding in sorted(findings):
        fingerprint = finding.fingerprint()
        if remaining.get(fingerprint, 0) > 0:
            remaining[fingerprint] -= 1
            continue
        fresh.append(finding)
    return fresh
