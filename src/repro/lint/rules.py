"""The repo-specific lint rules.

Each rule machine-checks one invariant that the paper's guarantees (or a
prior PR's contract) depend on; ``docs/linting.md`` maps every rule to
the claim it protects.  Rules are AST visitors over one module
(:meth:`Rule.check_module`) or over the whole linted tree at once
(:meth:`Rule.check_project` — used by ``registry-completeness``).
"""

from __future__ import annotations

import ast
from dataclasses import replace
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Type

from repro.lint.config import LintConfig, module_matches
from repro.lint.findings import Finding
from repro.lint.module import ModuleInfo

__all__ = ["Rule", "RULES", "rule_names"]


class Rule:
    """Base class: name, docs, and default module scope."""

    name: str = "abstract"
    summary: str = ""
    #: ``"error"`` fails the lint run; ``"warn"`` is advisory only.
    severity: str = "error"
    #: Dotted-module prefixes the rule applies to by default.
    default_scope: Tuple[str, ...] = ("repro",)
    #: Prefixes inside the scope that are sanctioned by default.
    default_exempt: Tuple[str, ...] = ()
    #: Minimal offending snippet, rendered by ``--explain``.
    example_bad: str = ""
    #: The sanctioned counterpart, rendered by ``--explain``.
    example_good: str = ""

    def applies_to(self, module: str, config: LintConfig) -> bool:
        """True when this rule should check dotted module ``module``."""
        scope = config.scope_for(self.name, self.default_scope)
        exempt = config.exempt_for(self.name, self.default_exempt)
        return module_matches(module, scope) and not module_matches(
            module, exempt
        )

    def check_module(
        self, module: ModuleInfo, config: LintConfig
    ) -> Iterator[Finding]:
        """Findings for one module in isolation (default: none)."""
        return iter(())

    def check_project(
        self, modules: Sequence[ModuleInfo], config: LintConfig
    ) -> Iterator[Finding]:
        """Findings needing the whole linted tree at once (default: none)."""
        return iter(())

    def finding(self, module: ModuleInfo, node: ast.AST, message: str) -> Finding:
        """Build a :class:`Finding` at ``node`` with this rule's severity."""
        return Finding(module.display_path, getattr(node, "lineno", 1),
                       self.name, message, severity=self.severity)


def _dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _import_aliases(tree: ast.Module) -> Dict[str, str]:
    """Map local names to the absolute dotted things they refer to.

    ``import numpy as np`` -> ``{"np": "numpy"}``;
    ``from numpy import random as npr`` -> ``{"npr": "numpy.random"}``;
    ``from random import randint`` -> ``{"randint": "random.randint"}``.
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                aliases[alias.asname or alias.name.split(".")[0]] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for alias in node.names:
                if alias.name == "*":
                    continue
                aliases[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}"
                )
    return aliases


def _resolve_call_target(
    func: ast.AST, aliases: Dict[str, str]
) -> Optional[str]:
    """Absolute dotted name a call targets, through import aliases."""
    dotted = _dotted_name(func)
    if dotted is None:
        return None
    head, _, rest = dotted.partition(".")
    resolved_head = aliases.get(head, head)
    return f"{resolved_head}.{rest}" if rest else resolved_head


class SeededRngOnly(Rule):
    """Experiments must be deterministic: Figures 3-7 are reproduced from
    fixed seeds, so randomness must flow through an injected, seeded
    ``numpy.random.Generator`` — never the process-global RNG state."""

    name = "seeded-rng-only"
    summary = ("global numpy.random.* / random.* call; inject a seeded "
               "numpy.random.Generator instead")
    default_scope = ("repro", "tests", "benchmarks")
    #: The sanitizer's RNG guard reads global state on purpose (to detect
    #: exactly this misuse at runtime).
    default_exempt = ("repro.sanitize.runtime",)
    example_bad = "points = np.random.uniform(size=(n, d))"
    example_good = (
        "rng = np.random.default_rng(seed)\n"
        "points = rng.uniform(size=(n, d))"
    )

    def check_module(
        self, module: ModuleInfo, config: LintConfig
    ) -> Iterator[Finding]:
        """Flag global-RNG calls resolved through import aliases."""
        aliases = _import_aliases(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            target = _resolve_call_target(node.func, aliases)
            if target is None:
                continue
            if target.startswith("numpy.random."):
                attribute = target.split(".", 2)[2].split(".")[0]
                if attribute not in config.rng_allowed:
                    yield self.finding(
                        module, node,
                        f"call to global numpy.random.{attribute}; pass a "
                        f"seeded numpy.random.Generator "
                        f"(np.random.default_rng(seed)) instead",
                    )
            elif target.startswith("random."):
                attribute = target.split(".")[1]
                yield self.finding(
                    module, node,
                    f"call to stdlib random.{attribute} uses hidden global "
                    f"state; use an injected numpy.random.Generator",
                )


class UseCoreBits(Rule):
    """``col`` is O(d) bit-exact only because all bucket bit arithmetic
    funnels through ``repro.core.bits`` (Def. 6, Lemma 6).  Ad-hoc
    popcount/Hamming reimplementations drift out from under the proofs
    and the property tests that pin them."""

    name = "use-core-bits"
    summary = ("ad-hoc bit twiddling; call repro.core.bits.popcount / "
               "hamming_distance")
    default_scope = ("repro", "tests", "benchmarks")
    default_exempt = ("repro.core.bits", "tests.test_bits")
    example_bad = 'ones = bin(mask).count("1")'
    example_good = (
        "from repro.core.bits import popcount\n"
        "ones = popcount(mask)"
    )

    @staticmethod
    def _is_count_of_ones(node: ast.Call) -> bool:
        """``bin(x).count("1")`` or ``format(x, "b").count("1")``."""
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr == "count"):
            return False
        if not (
            len(node.args) == 1
            and isinstance(node.args[0], ast.Constant)
            and node.args[0].value == "1"
        ):
            return False
        receiver = func.value
        if not isinstance(receiver, ast.Call):
            return False
        inner = receiver.func
        if isinstance(inner, ast.Name) and inner.id == "bin":
            return True
        return (
            isinstance(inner, ast.Name)
            and inner.id == "format"
            and len(receiver.args) == 2
            and isinstance(receiver.args[1], ast.Constant)
            and receiver.args[1].value in ("b", "#b", "064b")
        )

    @staticmethod
    def _is_kernighan_loop(node: ast.While) -> bool:
        """``while x: ...; x &= x - 1`` — the classic popcount loop."""
        for child in ast.walk(node):
            if (
                isinstance(child, ast.AugAssign)
                and isinstance(child.op, ast.BitAnd)
                and isinstance(child.target, ast.Name)
                and isinstance(child.value, ast.BinOp)
                and isinstance(child.value.op, ast.Sub)
                and isinstance(child.value.left, ast.Name)
                and child.value.left.id == child.target.id
            ):
                return True
        return False

    def check_module(
        self, module: ModuleInfo, config: LintConfig
    ) -> Iterator[Finding]:
        """Flag popcount/Hamming reimplementations."""
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                if self._is_count_of_ones(node):
                    yield self.finding(
                        module, node,
                        'bin(x).count("1") reimplements popcount; call '
                        "repro.core.bits.popcount",
                    )
                elif (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "bit_count"
                    and not node.args
                ):
                    yield self.finding(
                        module, node,
                        "x.bit_count() bypasses repro.core.bits; call "
                        "popcount / hamming_distance so the O(d) hot path "
                        "stays in one audited module",
                    )
            elif isinstance(node, ast.While) and self._is_kernighan_loop(node):
                yield self.finding(
                    module, node,
                    "manual clear-lowest-set-bit popcount loop; call "
                    "repro.core.bits.popcount",
                )


class ChargeThroughBufferPool(Rule):
    """PR 1's contract: only cache *misses* may be charged to the
    simulated ``DiskArray``.  Any ``.charge()`` call outside the
    sanctioned engine/simulator/cache modules bypasses the buffer pool
    and silently inflates I/O counts."""

    name = "charge-through-buffer-pool"
    summary = ("DiskArray.charge outside the sanctioned engine modules "
               "bypasses the buffer pool")
    default_scope = ("repro",)
    default_exempt = (
        "repro.parallel.engine",
        "repro.parallel.paged",
        "repro.parallel.window",
        "repro.parallel.cache",
        "repro.parallel.disks",
    )
    example_bad = (
        "def fetch(disks, leaf):\n"
        "    disks.charge(leaf)          # bypasses the buffer pool\n"
        "    return leaf.entries"
    )
    example_good = (
        "# Read through the engine: PagedEngine consults its BufferPool\n"
        "# and charges the DiskArray only on a miss.\n"
        "points, oids = engine.fetch_page(leaf)"
    )

    def check_module(
        self, module: ModuleInfo, config: LintConfig
    ) -> Iterator[Finding]:
        """Flag every DiskArray.charge call in non-exempt modules."""
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "charge"
            ):
                yield self.finding(
                    module, node,
                    "page reads must be charged through the buffer-pool "
                    "engines (repro.parallel.engine/paged/window) so only "
                    "cache misses hit the DiskArray",
                )


class NoFloatEq(Rule):
    """Distances are floating point; ``==``/``!=`` on them makes kNN
    tie-breaking and pruning depend on rounding.  Compare squared keys,
    or use ``math.isclose`` / ``numpy.isclose`` with explicit tolerance."""

    name = "no-float-eq"
    summary = "exact ==/!= on a float-valued distance expression"
    default_scope = ("repro.index", "repro.analysis")
    example_bad = "if mindist(query, mbr) == best_dist:"
    example_good = "if math.isclose(mindist(query, mbr), best_dist,\n                rel_tol=1e-12):"

    _FLOAT_CALL_NAMES = frozenset(
        {"sqrt", "norm", "mindist", "minmaxdist", "key_to_distance"}
    )

    @classmethod
    def _is_floatish(cls, node: ast.AST) -> bool:
        if isinstance(node, ast.Constant):
            return isinstance(node.value, float)
        if isinstance(node, ast.UnaryOp):
            return cls._is_floatish(node.operand)
        if isinstance(node, ast.BinOp):
            if isinstance(node.op, (ast.Div, ast.Pow)):
                return True
            return cls._is_floatish(node.left) or cls._is_floatish(node.right)
        if isinstance(node, ast.Call):
            func = node.func
            name = (
                func.attr if isinstance(func, ast.Attribute)
                else func.id if isinstance(func, ast.Name)
                else ""
            )
            lowered = name.lower()
            return lowered in cls._FLOAT_CALL_NAMES or "dist" in lowered
        return False

    def check_module(
        self, module: ModuleInfo, config: LintConfig
    ) -> Iterator[Finding]:
        """Flag exact ==/!= between float-valued expressions."""
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
                continue
            operands = [node.left, *node.comparators]
            if any(self._is_floatish(operand) for operand in operands):
                yield self.finding(
                    module, node,
                    "exact ==/!= on a float distance expression is "
                    "rounding-dependent; compare squared keys or use "
                    "math.isclose with an explicit tolerance",
                )


class NoPrintOutsideCli(Rule):
    """Library modules are imported by engines, simulators, and tests;
    stray ``print`` output corrupts reports and benchmark pipelines.
    Output belongs to the CLI layer (and ``experiments.report``)."""

    name = "no-print-outside-cli"
    summary = "print() in a library module; route output through the CLI"
    default_scope = ("repro",)
    default_exempt = (
        "repro.cli",
        "repro.__main__",
        "repro.experiments.report",
        "repro.lint.cli",
        "repro.lint.__main__",
        "repro.obs.catalogue",
        "repro.sanitize.cli",
        "repro.sanitize.__main__",
    )
    example_bad = (
        "def query(self, point, k):\n"
        '    print(f"visited {self.pages} pages")   # corrupts pipelines'
    )
    example_good = (
        "def query(self, point, k):\n"
        "    ...\n"
        "    return QueryResult(neighbors, pages)   # CLI renders it"
    )

    def check_module(
        self, module: ModuleInfo, config: LintConfig
    ) -> Iterator[Finding]:
        """Flag print() calls in library modules."""
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "print"
            ):
                yield self.finding(
                    module, node,
                    "library modules must not print; return data and let "
                    "the CLI (repro.cli) render it",
                )


class NoBroadExcept(Rule):
    """``except Exception`` hides the precise failure modes the
    reproduction scorecard is meant to distinguish; catch the specific
    types a checker can actually raise."""

    name = "no-broad-except"
    summary = "bare/over-broad except; catch specific exception types"
    default_scope = ("repro",)
    example_bad = (
        "try:\n"
        "    store = load_mmap_store(path)\n"
        "except Exception:\n"
        "    store = None"
    )
    example_good = (
        "try:\n"
        "    store = load_mmap_store(path)\n"
        "except (OSError, PageFormatError):\n"
        "    store = None"
    )

    def check_module(
        self, module: ModuleInfo, config: LintConfig
    ) -> Iterator[Finding]:
        """Flag bare and Exception/BaseException handlers."""
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    module, node,
                    "bare except catches SystemExit/KeyboardInterrupt too; "
                    "name the exception types this block can really handle",
                )
                continue
            names = (
                [elt for elt in node.type.elts]
                if isinstance(node.type, ast.Tuple)
                else [node.type]
            )
            for caught in names:
                dotted = _dotted_name(caught) or ""
                if dotted.split(".")[-1] in ("Exception", "BaseException"):
                    yield self.finding(
                        module, node,
                        f"except {dotted} is too broad; catch the specific "
                        f"failure types instead",
                    )
                    break


class RegistryCompleteness(Rule):
    """Every declustering scheme defined in ``core/`` and ``baselines/``
    must be reachable from the CLI/harness registry
    (``repro.registry.DECLUSTERERS``), or experiments silently stop
    covering it."""

    name = "registry-completeness"
    summary = "declustering scheme not registered in repro.registry"
    default_scope = ("repro.core", "repro.baselines")
    example_bad = (
        "# repro/baselines/shiny.py — never imported by repro.registry\n"
        "class ShinyDeclusterer(Declusterer): ..."
    )
    example_good = (
        "# repro/registry.py\n"
        'DECLUSTERERS["shiny"] = ShinyDeclusterer'
    )

    def _scheme_classes(
        self, module: ModuleInfo, config: LintConfig
    ) -> Iterator[ast.ClassDef]:
        suffix = config.scheme_suffix
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if node.name.startswith("_") or node.name in config.abstract_schemes:
                continue
            base_names = [
                (_dotted_name(base) or "").split(".")[-1]
                for base in node.bases
            ]
            if node.name.endswith(suffix) and any(
                name.endswith(suffix) or name == "ABC"
                for name in base_names
            ):
                yield node

    @staticmethod
    def _registered_names(registry: ModuleInfo) -> frozenset:
        names = set()
        for node in ast.walk(registry.tree):
            if isinstance(node, ast.Name):
                names.add(node.id)
            elif isinstance(node, ast.Attribute):
                names.add(node.attr)
            elif isinstance(node, ast.ImportFrom):
                names.update(alias.name for alias in node.names)
        return frozenset(names)

    def check_project(
        self, modules: Sequence[ModuleInfo], config: LintConfig
    ) -> Iterator[Finding]:
        """Cross-check scheme classes against the registry module."""
        in_scope = [
            module for module in modules if self.applies_to(module.name, config)
        ]
        schemes: List[Tuple[ModuleInfo, ast.ClassDef]] = [
            (module, node)
            for module in in_scope
            for node in self._scheme_classes(module, config)
        ]
        if not schemes:
            return
        registry = next(
            (m for m in modules if m.name == config.registry_module), None
        )
        if registry is None:
            registry = ModuleInfo.locate_sibling(
                schemes[0][0], config.registry_module
            )
        if registry is None:
            module, node = schemes[0]
            yield self.finding(
                module, node,
                f"registry module {config.registry_module} not found; "
                f"schemes cannot be checked for CLI/harness reachability",
            )
            return
        registered = self._registered_names(registry)
        for module, node in schemes:
            if node.name not in registered:
                yield self.finding(
                    module, node,
                    f"scheme {node.name} is not referenced by "
                    f"{config.registry_module}; register it in DECLUSTERERS "
                    f"so the CLI and harness can reach it",
                )


class NoMissingPublicDocstring(Rule):
    """The observability contract is documented *at* the API surface:
    every public class/function in ``repro.parallel`` and ``repro.obs``
    states what it does (and, for query paths, which trace events it
    emits).  Advisory in the instrumented packages — a warning, not a
    failure — so refactors are not blocked mid-flight; *escalated to
    error* inside the correctness tooling itself (``repro.lint`` and
    ``repro.sanitize``, per ``LintConfig.docstring_error_scope``): the
    linter dogfoods its own documentation bar."""

    name = "no-missing-public-docstring"
    summary = ("public def/class without a docstring in the instrumented "
               "packages (advisory; error in repro.lint/repro.sanitize)")
    severity = "warn"
    default_scope = ("repro.parallel", "repro.obs", "repro.lint",
                     "repro.sanitize", "repro.serve")
    example_bad = (
        "class PagedEngine:\n"
        "    def query(self, point, k):\n"
        "        ..."
    )
    example_good = (
        "class PagedEngine:\n"
        "    def query(self, point, k):\n"
        '        """kNN over mmap pages; emits page_read trace events."""'
    )

    def _undocumented(
        self, body: Sequence[ast.stmt], owner: str
    ) -> Iterator[Tuple[ast.AST, str]]:
        for node in body:
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            if node.name.startswith("_"):
                continue
            qualified = f"{owner}{node.name}" if owner else node.name
            if ast.get_docstring(node) is None:
                yield node, qualified
            if isinstance(node, ast.ClassDef):
                yield from self._undocumented(node.body, f"{qualified}.")

    def check_module(
        self, module: ModuleInfo, config: LintConfig
    ) -> Iterator[Finding]:
        """Flag undocumented publics (error-severity in the dogfood scope)."""
        escalate = module_matches(module.name, config.docstring_error_scope)
        for node, qualified in self._undocumented(module.tree.body, ""):
            kind = "class" if isinstance(node, ast.ClassDef) else "function"
            found = self.finding(
                module, node,
                f"public {kind} {qualified} has no docstring; state what "
                f"it does and which trace events (if any) it emits",
            )
            if escalate:
                found = replace(found, severity="error")
            yield found


class PreferKernelMindist(Rule):
    """PR 5 vectorized the traversal hot path: one
    ``repro.index.kernels.child_mindists`` call replaces a Python loop
    of per-entry ``mindist`` calls.  New per-entry loops reintroduce the
    O(children) interpreter overhead the kernels removed — advisory so
    prototypes are not blocked, with the sanctioned scalar fallbacks
    grandfathered in ``lint-baseline.json``."""

    name = "prefer-kernel-mindist"
    summary = ("per-entry mbr.mindist loop; use "
               "repro.index.kernels.child_mindists")
    severity = "warn"
    default_scope = ("repro",)
    default_exempt = ("repro.index.kernels",)
    example_bad = (
        "dists = [entry.mbr.mindist(query) for entry in node.entries]"
    )
    example_good = (
        "from repro.index.kernels import child_mindists\n"
        "dists = child_mindists(query, node.entries)"
    )

    @staticmethod
    def _iterates_entries(iterable: ast.AST) -> bool:
        """True when the loop iterable draws from a node's ``entries``."""
        return any(
            isinstance(node, ast.Attribute) and node.attr == "entries"
            for node in ast.walk(iterable)
        )

    @staticmethod
    def _mindist_calls(body: Sequence[ast.AST]) -> Iterator[ast.Call]:
        for root in body:
            for node in ast.walk(root):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "mindist"
                ):
                    yield node

    def check_module(
        self, module: ModuleInfo, config: LintConfig
    ) -> Iterator[Finding]:
        """Flag ``mindist`` calls inside loops over node entries."""
        for node in ast.walk(module.tree):
            if isinstance(node, ast.For):
                iterables = [node.iter]
                body: List[ast.AST] = [*node.body]
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)
            ):
                iterables = [gen.iter for gen in node.generators]
                body = [
                    node.elt,
                    *(
                        test
                        for gen in node.generators
                        for test in gen.ifs
                    ),
                ]
            else:
                continue
            if not any(self._iterates_entries(it) for it in iterables):
                continue
            for call in self._mindist_calls(body):
                yield self.finding(
                    module, call,
                    "per-entry mindist loop over node entries; one "
                    "repro.index.kernels.child_mindists call computes the "
                    "whole batch (bit-identically) without the Python "
                    "loop",
                )


#: Registered rule classes, in reporting order.
RULES: Tuple[Type[Rule], ...] = (
    SeededRngOnly,
    UseCoreBits,
    ChargeThroughBufferPool,
    NoFloatEq,
    NoPrintOutsideCli,
    NoBroadExcept,
    RegistryCompleteness,
    NoMissingPublicDocstring,
    PreferKernelMindist,
)


def rule_names() -> Tuple[str, ...]:
    """Names of the per-module rules (excludes the dataflow layer; see
    ``repro.lint.engine.all_rule_names`` for the complete set)."""
    return tuple(rule.name for rule in RULES)
