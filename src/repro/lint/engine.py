"""Lint driver: discover files, run rules, apply suppressions.

:func:`run_lint` is the whole programmatic API — tests and the CLI both
call it.  Findings come back sorted by path/line; an empty list means
the tree upholds every invariant.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Dict, Iterable, List, Sequence, Set, Tuple, Type, Union

from repro.lint.concurrency import CONCURRENCY_RULES
from repro.lint.config import DEFAULT_CONFIG, LintConfig
from repro.lint.dataflow import DATAFLOW_RULES
from repro.lint.findings import Finding
from repro.lint.lifetime import LIFETIME_RULES
from repro.lint.module import ModuleInfo
from repro.lint.rules import RULES, Rule

__all__ = [
    "run_lint",
    "discover_files",
    "ALL_RULES",
    "all_rule_names",
    "rule_summaries",
]

#: Synthetic rule names the engine itself emits.
SYNTAX_ERROR = "syntax-error"
UNUSED_SUPPRESSION = "unused-suppression"

#: Per-module rules plus the cross-module dataflow, async-safety, and
#: resource-lifetime layers, in reporting order.  Aggregated here (not
#: in ``rules``) because those rules subclass
#: :class:`~repro.lint.rules.Rule` and importing them back into
#: ``rules`` would be circular.
ALL_RULES: Tuple[Type[Rule], ...] = (
    tuple(RULES)
    + tuple(DATAFLOW_RULES)
    + tuple(CONCURRENCY_RULES)
    + tuple(LIFETIME_RULES)
)


def all_rule_names() -> Tuple[str, ...]:
    """Names of every registered rule (module-local and dataflow)."""
    return tuple(rule.name for rule in ALL_RULES)


def rule_summaries() -> Dict[str, str]:
    """Rule name to one-line summary, including the synthetic rules."""
    summaries = {rule.name: rule.summary for rule in ALL_RULES}
    summaries[SYNTAX_ERROR] = "file cannot be parsed"
    summaries[UNUSED_SUPPRESSION] = (
        "repro-lint suppression comment that silences nothing"
    )
    return summaries

_SKIP_DIRS = {".git", "__pycache__", ".mypy_cache", ".ruff_cache", "build"}


def discover_files(paths: Iterable[Union[str, Path]]) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    found: Set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for candidate in path.rglob("*.py"):
                if not _SKIP_DIRS.intersection(candidate.parts):
                    found.add(candidate)
        elif path.suffix == ".py" and path.is_file():
            found.add(path)
    return sorted(found)


def _parse_all(
    files: Sequence[Path],
) -> Tuple[List[ModuleInfo], List[Finding]]:
    modules: List[ModuleInfo] = []
    findings: List[Finding] = []
    for path in files:
        try:
            modules.append(ModuleInfo.parse(path))
        except SyntaxError as error:
            findings.append(
                Finding(str(path), error.lineno or 1, SYNTAX_ERROR,
                        f"cannot parse: {error.msg}")
            )
    return modules, findings


def _apply_suppressions(
    modules: Sequence[ModuleInfo], findings: Sequence[Finding]
) -> List[Finding]:
    """Drop suppressed findings; flag suppressions that did no work.

    Usage is tracked *per rule*, not per line: a comment like
    ``# repro-lint: disable=rule-a,rule-b`` where only ``rule-a`` fired
    reports ``rule-b`` as unused, and the unused-suppression message
    names the idle rule and its line.
    """
    by_path = {module.display_path: module for module in modules}
    kept: List[Finding] = []
    used: Set[Tuple[str, int, str]] = set()
    for finding in findings:
        module = by_path.get(finding.path)
        if module is not None and module.suppresses(finding.line, finding.rule):
            used.add((finding.path, finding.line, finding.rule))
        else:
            kept.append(finding)
    for module in modules:
        for line, rules in sorted(module.suppressions.items()):
            any_used = any(
                key[0] == module.display_path and key[1] == line
                for key in used
            )
            for rule in sorted(rules):
                if rule == "all":
                    if not any_used:
                        kept.append(
                            Finding(
                                module.display_path, line, UNUSED_SUPPRESSION,
                                f"suppression disable=all on line {line} "
                                f"matches no finding; remove it",
                            )
                        )
                elif (module.display_path, line, rule) not in used:
                    kept.append(
                        Finding(
                            module.display_path, line, UNUSED_SUPPRESSION,
                            f"suppression disable={rule} on line {line} "
                            f"matches no {rule} finding; remove it",
                        )
                    )
    return kept


def _module_pass(
    rule: Rule, module: ModuleInfo, config: LintConfig
) -> List[Finding]:
    """One (rule, module) per-file pass, materialized for fan-out."""
    return list(rule.check_module(module, config))


def run_lint(
    paths: Iterable[Union[str, Path]],
    config: LintConfig = DEFAULT_CONFIG,
    jobs: int = 1,
) -> List[Finding]:
    """Lint ``paths`` (files or directories) under ``config``.

    Returns all surviving findings sorted by location.  Suppression
    comments (``# repro-lint: disable=<rule>[,rule...]`` or
    ``disable=all``) silence same-line findings; a suppression that
    silences nothing is itself reported as ``unused-suppression``.

    ``jobs > 1`` fans the per-file ``check_module`` passes out over a
    thread pool (rules are stateless visitors over already-parsed
    ASTs, so this is safe); the cross-module ``check_project`` passes
    always run single-threaded because they share one project index.
    The final sort makes output order independent of ``jobs``.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    files = discover_files(paths)
    modules, findings = _parse_all(files)
    rules: List[Rule] = [
        rule_class() for rule_class in ALL_RULES
        if config.rule_enabled(rule_class.name)
    ]
    module_work = [
        (rule, module)
        for rule in rules
        for module in modules
        if rule.applies_to(module.name, config)
    ]
    if jobs > 1 and len(module_work) > 1:
        with ThreadPoolExecutor(max_workers=jobs) as pool:
            for batch in pool.map(
                lambda work: _module_pass(work[0], work[1], config),
                module_work,
            ):
                findings.extend(batch)
    else:
        for rule, module in module_work:
            findings.extend(_module_pass(rule, module, config))
    for rule in rules:
        findings.extend(rule.check_project(modules, config))
    return sorted(_apply_suppressions(modules, findings))
