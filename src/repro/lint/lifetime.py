"""Resource-lifetime & process-safety rules for the out-of-core layer.

PR 8 made the paper's parallel-disk architecture real: mmap page files
(:mod:`repro.storage`), spawn-started worker processes and a
shared-memory pruning bound (:mod:`repro.parallel.process`).  The bug
classes that silently corrupt that layer — a leaked ``PageFile``, a
read of the shared bound outside its lock, a handle pickled into a
spawned worker — are all *path* properties, invisible to the lexical
walks used by the other rule groups.  This module pairs the per-function
control-flow graphs of :mod:`repro.lint.cfg` with the import-resolved
project index of :mod:`repro.lint.callgraph` to check them statically:

* :class:`ResourceLeak` — closeable values (``PageFile``, ``MmapStore``,
  ``mmap``, ``open()``, multiprocessing queues / shared memory) must be
  closed on **every** CFG path, including exception paths; escaping by
  ``return`` or into ``self`` on a class with an owning ``close()`` is
  sanctioned;
* :class:`UseAfterClose` — method calls on a resource along any normal
  path after its ``.close()``;
* :class:`SharedStateWithoutLock` — element accesses on
  ``multiprocessing`` ``Value``/``Array``/shared-memory buffers (and
  ``np.frombuffer`` views over them, tracked interprocedurally through
  call arguments and ``Process(target=..., args=...)``) outside a
  lock-held ``with`` block, honoring ``_SINGLE_WRITER`` annotations and
  callees invoked only with the lock already held;
* :class:`SpawnUnsafeCapture` — mmap-owning stores, ``threading`` locks,
  tracers, or open files reachable in the args pickled to
  ``Process(target=...)`` or ``put(...)`` onto a worker task queue;
* :class:`CtxRequired` — bare ``multiprocessing.Process/Queue/Lock``
  instead of an explicit ``get_context("spawn")`` handle.

Shared over-approximation philosophy: the CFG has spurious edges but no
missing ones, so a leak can be flagged that a human would argue away,
but a real leak is never hidden.  Sanctioned escapes, in preference
order: a ``with`` block, ``close()`` in a ``finally``, returning the
resource to the caller, storing it on ``self`` of a class that defines
``close()``/``stop()``/``shutdown()``, or — last resort — a same-line
``# repro-lint: disable=<rule>`` comment.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import (
    Dict,
    FrozenSet,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.lint.callgraph import (
    FunctionInfo,
    ProjectIndex,
    dotted_name,
    import_aliases,
)
from repro.lint.cfg import CFG, build_cfg
from repro.lint.concurrency import (
    _class_qualname,
    _in_spans,
    _locked_spans,
    _own_nodes,
    _single_writer_attrs,
)
from repro.lint.config import LintConfig
from repro.lint.findings import Finding
from repro.lint.module import ModuleInfo
from repro.lint.rules import Rule

__all__ = [
    "ResourceLeak",
    "UseAfterClose",
    "SharedStateWithoutLock",
    "SpawnUnsafeCapture",
    "CtxRequired",
    "LIFETIME_RULES",
]

_FUNC_TYPES = (ast.FunctionDef, ast.AsyncFunctionDef)

#: Method names that release a tracked resource when called on it.
#: ``delete`` is the spill-file release verb (close + unlink): the
#: streaming builder deletes — or adopts into a registry — every spill
#: run on every CFG path, and this rule is what enforces that.
_CLOSE_METHODS = frozenset(
    {"close", "stop", "terminate", "shutdown", "unlink", "delete"}
)

#: A class defining any of these owns the lifetime of resources stored
#: on its ``self`` — storing a handle there is a sanctioned escape.
_OWNING_CLOSERS = frozenset(
    {"close", "stop", "shutdown", "terminate", "__exit__", "__del__"}
)

#: Container-mutation methods that transfer a resource into a registry.
_CONTAINER_ADDERS = frozenset(
    {"append", "add", "extend", "insert", "register", "setdefault"}
)

#: Methods a resource may still receive after ``close()`` (idempotent
#: re-close and the multiprocessing queue drain protocol).
_POST_CLOSE_OK = _CLOSE_METHODS | {
    "join",
    "join_thread",
    "cancel_join_thread",
}

_MP_QUEUE_FACTORIES = frozenset({"Queue", "SimpleQueue", "JoinableQueue"})
_MP_SHARED_FACTORIES = frozenset({"Array", "Value", "RawArray", "RawValue"})

#: multiprocessing top-level factories that silently bind the
#: platform-default start method (``fork`` on Linux, ``spawn`` on
#: macOS/Windows) — exactly the nondeterminism ``ctx-required`` bans.
_MP_BARE = frozenset(
    {
        "Process",
        "Pool",
        "Queue",
        "SimpleQueue",
        "JoinableQueue",
        "Lock",
        "RLock",
        "Semaphore",
        "BoundedSemaphore",
        "Event",
        "Condition",
        "Barrier",
        "Value",
        "Array",
        "RawValue",
        "RawArray",
    }
)

#: threading primitives are process-local: pickling one into a spawned
#: worker either fails outright or yields an unrelated copy.
_THREADING_PRIMITIVES = frozenset(
    {
        "threading.Lock",
        "threading.RLock",
        "threading.Condition",
        "threading.Semaphore",
        "threading.BoundedSemaphore",
        "threading.Event",
        "threading.Barrier",
    }
)


# --------------------------------------------------------------- helpers


def _final(name: str) -> str:
    """Last segment of a dotted name."""
    return name.rsplit(".", 1)[-1]


def _resolve(aliases: Dict[str, str], local: str) -> str:
    """Resolve a local dotted name through a module's import table."""
    head, _, rest = local.partition(".")
    resolved = aliases.get(head, head)
    return f"{resolved}.{rest}" if rest else resolved


def _call_target(
    call: ast.Call, aliases: Dict[str, str]
) -> Tuple[Optional[str], Optional[str]]:
    """``(local, alias-resolved)`` dotted target of one call."""
    local = dotted_name(call.func)
    if local is None:
        return None, None
    return local, _resolve(aliases, local)


def _mp_receiver(
    local: str, resolved: str, ctx_names: Set[str], ctx_attrs: Set[str]
) -> bool:
    """True when a factory call's receiver is ``multiprocessing`` itself
    or a known ``get_context(...)`` handle (local or ``self`` attribute)."""
    if resolved.startswith("multiprocessing."):
        return True
    parts = local.split(".")
    if len(parts) == 2 and parts[0] in ctx_names:
        return True
    return len(parts) == 3 and parts[0] == "self" and parts[1] in ctx_attrs


def _ctx_origin(call: ast.Call, aliases: Dict[str, str]) -> bool:
    """True for ``multiprocessing.get_context(...)`` calls."""
    local, _ = _call_target(call, aliases)
    return local is not None and _final(local) == "get_context"


def _queue_origin(
    call: ast.Call,
    aliases: Dict[str, str],
    ctx_names: Set[str],
    ctx_attrs: Set[str],
) -> bool:
    """True when the call constructs a multiprocessing queue."""
    local, resolved = _call_target(call, aliases)
    if local is None or resolved is None:
        return False
    return _final(local) in _MP_QUEUE_FACTORIES and _mp_receiver(
        local, resolved, ctx_names, ctx_attrs
    )


def _shared_origin(
    call: ast.Call,
    aliases: Dict[str, str],
    ctx_names: Set[str],
    ctx_attrs: Set[str],
) -> Optional[str]:
    """Description of the shared object this call constructs, if any."""
    local, resolved = _call_target(call, aliases)
    if local is None or resolved is None:
        return None
    final = _final(local)
    if final in _MP_SHARED_FACTORIES and _mp_receiver(
        local, resolved, ctx_names, ctx_attrs
    ):
        return f"multiprocessing shared {final}"
    if final == "SharedMemory":
        return "shared-memory segment"
    return None


def _closeable_origin(
    call: ast.Call,
    aliases: Dict[str, str],
    config: LintConfig,
    ctx_names: Set[str],
    ctx_attrs: Set[str],
) -> Optional[str]:
    """Description of the closeable resource this call creates, if any."""
    local, resolved = _call_target(call, aliases)
    if local is None or resolved is None:
        return None
    if resolved in ("open", "builtins.open"):
        return "open() file handle"
    if resolved == "mmap.mmap":
        return "mmap handle"
    final = _final(local)
    if final in config.closeable_types:
        return f"{final} instance"
    if final in _MP_QUEUE_FACTORIES and _mp_receiver(
        local, resolved, ctx_names, ctx_attrs
    ):
        return f"multiprocessing {final}"
    return None


def _unsafe_origin(
    call: ast.Call, aliases: Dict[str, str], config: LintConfig
) -> Optional[str]:
    """Description when this call constructs a spawn-unsafe value."""
    local, resolved = _call_target(call, aliases)
    if local is None or resolved is None:
        return None
    if resolved in ("open", "builtins.open"):
        return "an open() file handle"
    if resolved == "mmap.mmap":
        return "an mmap handle"
    final = _final(local)
    if final in config.spawn_unsafe_types:
        return f"a {final} (owns an mmap/file handle)"
    if final.endswith("Tracer"):
        return f"a {final} (process-local tracer)"
    if resolved in _THREADING_PRIMITIVES:
        return f"a {resolved} (process-local, not picklable)"
    return None


def _stmt_exprs(stmt: ast.AST) -> List[ast.AST]:
    """The expressions a statement's *own header* evaluates.

    A compound statement's CFG node holds the whole AST subtree, but
    only the header belongs to that node — its suites have nodes of
    their own — so path-sensitive rules must scan these, never
    ``ast.walk(stmt)``.
    """
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        headers: List[ast.AST] = []
        for item in stmt.items:
            headers.append(item.context_expr)
            if item.optional_vars is not None:
                headers.append(item.optional_vars)
        return headers
    if isinstance(stmt, ast.Return):
        return [stmt.value] if stmt.value is not None else []
    if isinstance(stmt, ast.Raise):
        return [expr for expr in (stmt.exc, stmt.cause) if expr is not None]
    if isinstance(stmt, ast.ExceptHandler):
        return [stmt.type] if stmt.type is not None else []
    match_cls = getattr(ast, "Match", None)
    if match_cls is not None and isinstance(stmt, match_cls):
        return [stmt.subject]  # type: ignore[attr-defined]
    if isinstance(
        stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Try)
    ):
        return []
    if isinstance(stmt, ast.stmt):
        return [stmt]
    return []


def _escaping_names(expr: Optional[ast.AST]) -> Set[str]:
    """Names whose *referent* escapes when ``expr``'s value escapes.

    A name passed whole — directly, inside tuple/list/set literals or
    dict values, starred, as a call argument, or through a conditional
    expression — hands the object out.  An attribute or subscript read
    *off* the name (``handle.size``) only hands out the read value.
    """
    names: Set[str] = set()
    stack: List[ast.AST] = [] if expr is None else [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, ast.Name):
            names.add(node.id)
        elif isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            stack.extend(node.elts)
        elif isinstance(node, ast.Starred):
            stack.append(node.value)
        elif isinstance(node, ast.Dict):
            stack.extend(value for value in node.values if value is not None)
        elif isinstance(node, ast.Call):
            stack.extend(node.args)
            stack.extend(keyword.value for keyword in node.keywords)
        elif isinstance(node, ast.IfExp):
            stack.extend((node.body, node.orelse))
    return names


def _root_name(node: ast.AST) -> Optional[str]:
    """Leftmost name of an attribute/subscript chain, else None."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


def _self_attr(node: ast.AST) -> Optional[str]:
    """``X`` when ``node`` is exactly ``self.X``, else None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


# --------------------------------------------------- per-class/function facts


@dataclass
class _ClassFacts:
    """What a class's methods collectively establish about ``self``."""

    name: str = ""
    has_owning_close: bool = False
    ctx_attrs: Set[str] = field(default_factory=set)
    shared_attrs: Dict[str, str] = field(default_factory=dict)
    queue_attrs: Set[str] = field(default_factory=set)
    unsafe_attrs: Dict[str, str] = field(default_factory=dict)


def _class_facts(
    classdef: ast.ClassDef, aliases: Dict[str, str], config: LintConfig
) -> _ClassFacts:
    """Collect shared/queue/context/unsafe attribute facts for a class."""
    facts = _ClassFacts(name=classdef.name)
    methods = [node for node in classdef.body if isinstance(node, _FUNC_TYPES)]
    facts.has_owning_close = any(
        method.name in _OWNING_CLOSERS for method in methods
    )
    # Two passes so facts established through an intermediate attribute
    # (``self._ctx = get_context(...)`` in __init__, ``self._ctx.Queue()``
    # elsewhere) resolve regardless of method order.
    for _ in range(2):
        for method in methods:
            _scan_method_facts(method, aliases, config, facts)
    for attr in _single_writer_attrs(classdef, config.single_writer_attr):
        facts.shared_attrs.pop(attr, None)
    return facts


def _scan_method_facts(
    method: ast.AST,
    aliases: Dict[str, str],
    config: LintConfig,
    facts: _ClassFacts,
) -> None:
    """One pass of attribute-fact collection over one method body."""
    nodes = list(_own_nodes(method))
    local_ctx: Set[str] = set()
    local_queues: Set[str] = set()
    for node in nodes:  # locals first: source order is not guaranteed
        if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
            continue
        target, value = node.targets[0], node.value
        if not isinstance(target, ast.Name):
            continue
        if isinstance(value, ast.Call) and _ctx_origin(value, aliases):
            local_ctx.add(target.id)
        elif isinstance(value, ast.Call) and _queue_origin(
            value, aliases, local_ctx, facts.ctx_attrs
        ):
            local_queues.add(target.id)
        elif _self_attr(value) in facts.ctx_attrs:
            local_ctx.add(target.id)
    for node in nodes:
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            attr = _self_attr(node.targets[0])
            value = node.value
            if attr is None:
                continue
            if isinstance(value, ast.Call):
                if _ctx_origin(value, aliases):
                    facts.ctx_attrs.add(attr)
                    continue
                shared = _shared_origin(
                    value, aliases, local_ctx, facts.ctx_attrs
                )
                if shared is not None:
                    facts.shared_attrs.setdefault(attr, shared)
                if _queue_origin(value, aliases, local_ctx, facts.ctx_attrs):
                    facts.queue_attrs.add(attr)
                unsafe = _unsafe_origin(value, aliases, config)
                if unsafe is not None:
                    facts.unsafe_attrs.setdefault(attr, unsafe)
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _CONTAINER_ADDERS
        ):
            attr = _self_attr(node.func.value)
            if attr is not None and any(
                isinstance(arg, ast.Name) and arg.id in local_queues
                for arg in node.args
            ):
                facts.queue_attrs.add(attr)


@dataclass
class _FunctionScan:
    """Flow-insensitive classification of one function's local names."""

    ctx: Set[str] = field(default_factory=set)
    queues: Set[str] = field(default_factory=set)
    shared: Dict[str, str] = field(default_factory=dict)
    unsafe: Dict[str, str] = field(default_factory=dict)


def _shared_ref(
    expr: ast.AST, shared: Dict[str, str], shared_attrs: Dict[str, str]
) -> Optional[str]:
    """Description when ``expr`` reads from a known shared object."""
    for node in ast.walk(expr):
        if isinstance(node, ast.Name) and node.id in shared:
            return shared[node.id]
        attr = _self_attr(node)
        if attr is not None and attr in shared_attrs:
            return shared_attrs[attr]
    return None


def _scan_function(
    func: ast.AST,
    aliases: Dict[str, str],
    config: LintConfig,
    facts: Optional[_ClassFacts],
) -> _FunctionScan:
    """Classify a function's locals as contexts/queues/shared/unsafe."""
    scan = _FunctionScan()
    nodes = list(_own_nodes(func))
    ctx_attrs = facts.ctx_attrs if facts is not None else set()
    queue_attrs = facts.queue_attrs if facts is not None else set()
    shared_attrs = facts.shared_attrs if facts is not None else {}
    unsafe_attrs = facts.unsafe_attrs if facts is not None else {}
    for _ in range(3):  # fixpoint for alias-of-alias chains
        for node in nodes:
            if isinstance(node, (ast.For, ast.AsyncFor)):
                attr = _self_attr(node.iter)
                if (
                    attr is not None
                    and attr in queue_attrs
                    and isinstance(node.target, ast.Name)
                ):
                    scan.queues.add(node.target.id)
                continue
            if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
                continue
            target, value = node.targets[0], node.value
            if not isinstance(target, ast.Name):
                continue
            name = target.id
            if isinstance(value, ast.Call):
                if _ctx_origin(value, aliases):
                    scan.ctx.add(name)
                    continue
                if _queue_origin(value, aliases, scan.ctx, ctx_attrs):
                    scan.queues.add(name)
                    continue
                shared = _shared_origin(value, aliases, scan.ctx, ctx_attrs)
                if shared is not None:
                    scan.shared[name] = shared
                    continue
                unsafe = _unsafe_origin(value, aliases, config)
                if unsafe is not None:
                    scan.unsafe.setdefault(
                        name, f"{unsafe} (created at line {node.lineno})"
                    )
                    continue
                _, resolved = _call_target(value, aliases)
                if resolved == "numpy.frombuffer" and value.args:
                    source = _shared_ref(
                        value.args[0], scan.shared, shared_attrs
                    )
                    if source is not None:
                        scan.shared[name] = f"{source} (via np.frombuffer)"
            elif isinstance(value, ast.Name):
                other = value.id
                if other in scan.ctx:
                    scan.ctx.add(name)
                if other in scan.queues:
                    scan.queues.add(name)
                if other in scan.shared:
                    scan.shared.setdefault(name, scan.shared[other])
                if other in scan.unsafe:
                    scan.unsafe.setdefault(name, scan.unsafe[other])
            elif isinstance(value, ast.Tuple):
                for elt in value.elts:
                    unsafe_elt = _unsafe_in_expr(
                        elt, scan, unsafe_attrs, aliases, config
                    )
                    if unsafe_elt is not None:
                        scan.unsafe.setdefault(
                            name,
                            f"{unsafe_elt}, packed into '{name}' at line "
                            f"{node.lineno}",
                        )
                        break
            else:
                attr = _self_attr(value)
                if attr is None:
                    continue
                if attr in ctx_attrs:
                    scan.ctx.add(name)
                if attr in queue_attrs:
                    scan.queues.add(name)
                if attr in shared_attrs:
                    scan.shared.setdefault(name, shared_attrs[attr])
                if attr in unsafe_attrs:
                    scan.unsafe.setdefault(
                        name, f"self.{attr} — {unsafe_attrs[attr]}"
                    )
    return scan


def _unsafe_in_expr(
    expr: ast.AST,
    scan: _FunctionScan,
    unsafe_attrs: Dict[str, str],
    aliases: Dict[str, str],
    config: LintConfig,
) -> Optional[str]:
    """Description of the first spawn-unsafe value reachable in ``expr``."""
    for node in ast.walk(expr):
        if isinstance(node, ast.Name) and node.id in scan.unsafe:
            return f"'{node.id}' — {scan.unsafe[node.id]}"
        attr = _self_attr(node)
        if attr is not None and attr in unsafe_attrs:
            return f"self.{attr} — {unsafe_attrs[attr]}"
        if isinstance(node, ast.Call):
            inline = _unsafe_origin(node, aliases, config)
            if inline is not None:
                return f"{inline} constructed inline"
        if isinstance(node, ast.Name) and node.id in ("tracer", "_tracer"):
            return f"'{node.id}' (a process-local tracer, by name)"
        if isinstance(node, ast.Attribute) and node.attr in (
            "tracer",
            "_tracer",
        ):
            return f".{node.attr} (a process-local tracer, by name)"
    return None


def _functions_with_facts(
    tree: ast.Module, aliases: Dict[str, str], config: LintConfig
) -> Iterator[Tuple[ast.AST, Optional[_ClassFacts]]]:
    """Every function in a module paired with its owning class's facts."""

    def visit(
        body: Sequence[ast.stmt], facts: Optional[_ClassFacts]
    ) -> Iterator[Tuple[ast.AST, Optional[_ClassFacts]]]:
        for node in body:
            if isinstance(node, ast.ClassDef):
                yield from visit(node.body, _class_facts(node, aliases, config))
            elif isinstance(node, _FUNC_TYPES):
                yield node, facts
                yield from visit(node.body, facts)

    yield from visit(tree.body, None)


# ------------------------------------------------------------ resource-leak


@dataclass
class _Creation:
    """One tracked resource-creation site inside a function."""

    node_index: int
    stmt: ast.stmt
    name: str
    desc: str


class ResourceLeak(Rule):
    """The out-of-core engines open mmap-backed page files per disk and
    per worker; a handle that misses its ``close()`` on *one* path (an
    early return, a raising write) keeps the mapping and fd alive until
    interpreter exit — on Windows it also keeps the file locked, and
    under the multi-worker regime of the wall-clock benchmark the fd
    table fills long before anything visibly fails.  This rule walks
    every CFG path from each creation site and demands a close (or a
    sanctioned escape: ``with``, ``return``, storage on a ``self`` that
    owns a ``close()``) before function exit — exception paths
    included, which is where hand-review reliably goes blind."""

    name = "resource-leak"
    summary = (
        "closeable resource (PageFile/MmapStore/mmap/open()/mp queue) "
        "not closed on every path to function exit"
    )
    default_scope = ("repro",)
    example_bad = """\
def count(path):
    page = PageFile(path)
    if page.entry_count(0) == 0:
        return 0          # leaked: early return skips close()
    total = sum(page.entry_count(d) for d in range(4))
    page.close()          # leaked too if entry_count raises
    return total
"""
    example_good = """\
def count(path):
    page = PageFile(path)
    try:
        if page.entry_count(0) == 0:
            return 0
        return sum(page.entry_count(d) for d in range(4))
    finally:
        page.close()      # every path, exception paths included
"""

    def check_module(
        self, module: ModuleInfo, config: LintConfig
    ) -> Iterator[Finding]:
        """Flag creation sites whose resource can reach exit unclosed."""
        aliases = import_aliases(module.tree)
        for func, facts in _functions_with_facts(module.tree, aliases, config):
            yield from self._check_function(module, func, facts, aliases, config)

    def _check_function(
        self,
        module: ModuleInfo,
        func: ast.AST,
        facts: Optional[_ClassFacts],
        aliases: Dict[str, str],
        config: LintConfig,
    ) -> Iterator[Finding]:
        scan = _scan_function(func, aliases, config, facts)
        owning = facts is not None and facts.has_owning_close
        cfg = build_cfg(func)
        creations: List[_Creation] = []
        emitted: Set[Tuple[int, str]] = set()
        for node in cfg.nodes:
            if node.kind != "stmt" or node.stmt is None:
                continue
            stmt = node.stmt
            for header in _stmt_exprs(stmt):
                for call in ast.walk(header):
                    if not isinstance(call, ast.Call):
                        continue
                    desc = _closeable_origin(
                        call, aliases, config, scan.ctx,
                        facts.ctx_attrs if facts is not None else set(),
                    )
                    if desc is None:
                        continue
                    for line, message in self._classify(
                        node.index, stmt, call, desc, owning, creations
                    ):
                        if (line, message) not in emitted:
                            emitted.add((line, message))
                            site = ast.Pass()
                            site.lineno = line
                            yield self.finding(module, site, message)
        for creation in creations:
            for line, message in self._search(cfg, creation, owning):
                if (line, message) not in emitted:
                    emitted.add((line, message))
                    site = ast.Pass()
                    site.lineno = line
                    yield self.finding(module, site, message)

    @staticmethod
    def _classify(
        node_index: int,
        stmt: ast.stmt,
        call: ast.Call,
        desc: str,
        owning: bool,
        creations: List[_Creation],
    ) -> Iterator[Tuple[int, str]]:
        """Sort one closeable-creation call into sanctioned / tracked /
        immediately-wrong, yielding findings for the last category."""
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return  # the with block owns and closes it
        if isinstance(stmt, ast.Return):
            return  # escapes to the caller, which now owns it
        if isinstance(stmt, (ast.Assign, ast.AnnAssign)) and stmt.value is call:
            targets = (
                stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            )
            target = targets[0]
            if isinstance(target, ast.Name):
                creations.append(
                    _Creation(node_index, stmt, target.id, desc)
                )
                return
            root = _root_name(target)
            if root == "self" and not owning:
                yield (
                    call.lineno,
                    f"{desc} stored on self, but the class defines no "
                    f"close()/stop()/shutdown() that could ever release "
                    f"it; add an owning close() or keep it local",
                )
            return  # self-with-close or another object owns it now
        if isinstance(stmt, ast.Expr) and stmt.value is call:
            yield (
                call.lineno,
                f"{desc} created and immediately discarded; the handle "
                f"can never be closed — bind it and close it, or use a "
                f"with block",
            )
            return
        yield (
            call.lineno,
            f"{desc} created without a named owner (nested in a larger "
            f"expression); bind it to a name so a close() can reach it, "
            f"or wrap it in a with block",
        )

    def _search(
        self, cfg: CFG, creation: _Creation, owning: bool
    ) -> List[Tuple[int, str]]:
        """BFS all paths from one creation; report unclosed exits."""
        results: List[Tuple[int, str]] = []
        start: FrozenSet[str] = frozenset({creation.name})
        seen: Set[Tuple[int, FrozenSet[str], bool]] = set()
        # The creation statement itself may raise — but then the
        # constructor never returned, so only normal successors start
        # a live-resource path.
        queue: List[Tuple[int, FrozenSet[str], bool]] = [
            (succ, start, False)
            for succ in sorted(cfg.nodes[creation.node_index].succs)
        ]
        leaked_normal = False
        leaked_exc = False
        while queue:
            index, names, via_exc = queue.pop(0)
            state = (index, names, via_exc)
            if state in seen:
                continue
            seen.add(state)
            if index == cfg.exit:
                if via_exc:
                    leaked_exc = True
                else:
                    leaked_normal = True
                continue
            node = cfg.nodes[index]
            if node.kind == "stmt" and node.stmt is not None:
                verdict, names = self._transfer(
                    node.stmt, names, owning, results
                )
                if verdict in ("closed", "escaped", "stopped") or not names:
                    continue
            for succ, exc_edge in cfg.successors(index):
                queue.append((succ, names, via_exc or exc_edge))
        line = creation.stmt.lineno
        if leaked_normal:
            results.append(
                (
                    line,
                    f"{creation.desc} assigned to '{creation.name}' is not "
                    f"closed on at least one fall-through path to function "
                    f"exit; close it on every path (with block / finally)",
                )
            )
        if leaked_exc and not leaked_normal:
            results.append(
                (
                    line,
                    f"{creation.desc} assigned to '{creation.name}' leaks "
                    f"when a later statement raises: the exception path "
                    f"reaches function exit without close(); move it into "
                    f"a with block or close it in a finally",
                )
            )
        return results

    @staticmethod
    def _transfer(
        stmt: ast.stmt,
        names: FrozenSet[str],
        owning: bool,
        results: List[Tuple[int, str]],
    ) -> Tuple[str, FrozenSet[str]]:
        """Apply one statement to the alias set of a tracked resource.

        Returns ``(verdict, new_names)``; a ``"closed"`` / ``"escaped"``
        / ``"stopped"`` verdict ends the path, an empty alias set means
        the resource was rebound away (reported as a leak in-place).
        """
        # -- close: x.close() (any release method) in statement position
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
            call = stmt.value
            if isinstance(call.func, ast.Attribute):
                receiver = dotted_name(call.func.value)
                if call.func.attr in _CLOSE_METHODS and receiver in names:
                    return "closed", names
                if call.func.attr in _CONTAINER_ADDERS and (
                    _escaping_names_in_call(call) & names
                ):
                    root = _root_name(call.func.value)
                    if root == "self" and not owning:
                        results.append(
                            (
                                stmt.lineno,
                                "resource appended to a container on self, "
                                "but the class defines no close()/stop()/"
                                "shutdown() that could release it later",
                            )
                        )
                        return "stopped", names
                    return "escaped", names
        # -- with x: / with closing(x): — the block takes ownership
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            new = set(names)
            for item in stmt.items:
                ctx_expr = item.context_expr
                if (
                    isinstance(ctx_expr, ast.Name) and ctx_expr.id in names
                ) or (_escaping_names(ctx_expr) & names):
                    return "closed", names
                if item.optional_vars is not None:
                    for target in ast.walk(item.optional_vars):
                        if isinstance(target, ast.Name):
                            new.discard(target.id)
            return "", frozenset(new)
        # -- escape to the caller
        if isinstance(stmt, ast.Return):
            if _escaping_names(stmt.value) & names:
                return "escaped", names
            return "", names
        if isinstance(stmt, ast.Expr) and isinstance(
            stmt.value, (ast.Yield, ast.YieldFrom, ast.Await)
        ):
            if _escaping_names(stmt.value.value) & names:
                return "escaped", names
            return "", names
        # -- assignment: alias, escape into an owner, or rebind away
        if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            value = stmt.value
            targets = (
                stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            )
            aliases_resource = (
                value is not None and bool(_escaping_names(value) & names)
            )
            new = set(names)
            for target in targets:
                if isinstance(target, ast.Name):
                    if aliases_resource and isinstance(value, ast.Name):
                        new.add(target.id)
                    else:
                        new.discard(target.id)
                elif aliases_resource:
                    root = _root_name(target)
                    if root == "self" and not owning:
                        results.append(
                            (
                                stmt.lineno,
                                "resource stored on self, but the class "
                                "defines no close()/stop()/shutdown() that "
                                "could ever release it",
                            )
                        )
                        return "stopped", names
                    return "escaped", names
            if not new:
                results.append(
                    (
                        stmt.lineno,
                        "resource rebound before being closed; the only "
                        "reference is lost and the handle can no longer "
                        "be released",
                    )
                )
            return "", frozenset(new)
        # -- for x in ...: rebinds x; del x drops the reference
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            new = set(names)
            for target in ast.walk(stmt.target):
                if isinstance(target, ast.Name):
                    new.discard(target.id)
            return "", frozenset(new)
        if isinstance(stmt, ast.Delete):
            new = set(names)
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    new.discard(target.id)
            if not new:
                results.append(
                    (
                        stmt.lineno,
                        "resource deleted without close(); relying on the "
                        "garbage collector to release fds/mmaps is exactly "
                        "the nondeterminism this rule exists to prevent",
                    )
                )
            return "", frozenset(new)
        return "", names


def _escaping_names_in_call(call: ast.Call) -> Set[str]:
    """Names escaping through a call's arguments (not its receiver)."""
    names: Set[str] = set()
    for arg in call.args:
        names |= _escaping_names(arg)
    for keyword in call.keywords:
        names |= _escaping_names(keyword.value)
    return names


# ---------------------------------------------------------- use-after-close


class UseAfterClose(Rule):
    """A closed ``PageFile`` answers reads with whatever the layer
    beneath happens to raise (historically a raw ``ValueError: mmap
    closed or invalid`` from the C level) — or worse, a stale view.  The
    runtime contract (post-close reads raise a clear ``ValueError``) is
    only half the fix; this rule removes the pattern statically by
    walking normal-flow CFG paths from every ``x.close()`` and flagging
    the first later method call or subscript on ``x`` that is not an
    idempotent re-close or a queue-drain ``join_thread``."""

    name = "use-after-close"
    summary = "method call/subscript on a resource after its .close()"
    default_scope = ("repro",)
    example_bad = """\
page = PageFile(path)
count = page.entry_count(0)
page.close()
data = page.read_slot(0, 0)   # closed handle: undefined behavior
"""
    example_good = """\
page = PageFile(path)
count = page.entry_count(0)
data = page.read_slot(0, 0)
page.close()                  # close strictly last (or use `with`)
"""

    def check_module(
        self, module: ModuleInfo, config: LintConfig
    ) -> Iterator[Finding]:
        """Flag uses of a name along any normal path after its close()."""
        aliases = import_aliases(module.tree)
        for func, _ in _functions_with_facts(module.tree, aliases, config):
            yield from self._check_function(module, func)

    def _check_function(
        self, module: ModuleInfo, func: ast.AST
    ) -> Iterator[Finding]:
        cfg = build_cfg(func)
        emitted: Set[Tuple[int, int]] = set()
        for node in cfg.nodes:
            if node.kind != "stmt" or not isinstance(node.stmt, ast.Expr):
                continue
            call = node.stmt.value
            if not (
                isinstance(call, ast.Call)
                and isinstance(call.func, ast.Attribute)
                and call.func.attr == "close"
            ):
                continue
            receiver = dotted_name(call.func.value)
            if receiver is None or receiver == "self":
                continue
            for use_line, use_desc in self._uses_after(
                cfg, node.index, receiver
            ):
                key = (call.lineno, use_line)
                if key in emitted:
                    continue
                emitted.add(key)
                site = ast.Pass()
                site.lineno = use_line
                yield self.finding(
                    module,
                    site,
                    f"'{receiver}' is used here ({use_desc}) after its "
                    f"close() on line {call.lineno}; a closed handle's "
                    f"behavior is undefined — reorder the close, or "
                    f"rebind the name first",
                )

    def _uses_after(
        self, cfg: CFG, close_index: int, receiver: str
    ) -> List[Tuple[int, str]]:
        """``(line, use)`` post-close uses of ``receiver`` (normal
        paths)."""
        uses: List[Tuple[int, str]] = []
        seen: Set[int] = set()
        queue = sorted(cfg.nodes[close_index].succs)
        while queue:
            index = queue.pop(0)
            if index in seen or index == cfg.exit:
                continue
            seen.add(index)
            node = cfg.nodes[index]
            stop = False
            if node.kind == "stmt" and node.stmt is not None:
                if self._rebinds(node.stmt, receiver):
                    continue  # fresh object from here on
                use = self._first_use(node.stmt, receiver)
                if use is not None:
                    uses.append(use)
                    stop = True
            if not stop:
                queue.extend(succ for succ in node.succs if succ not in seen)
        return uses

    @staticmethod
    def _rebinds(stmt: ast.stmt, receiver: str) -> bool:
        """True when ``stmt`` rebinds exactly the receiver name."""
        targets: List[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
        elif isinstance(stmt, ast.AnnAssign):
            targets = [stmt.target]
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            targets = [stmt.target]
        elif isinstance(stmt, ast.Delete):
            targets = stmt.targets
        for target in targets:
            for node in ast.walk(target):
                if dotted_name(node) == receiver:
                    return True
        return False

    @staticmethod
    def _first_use(
        stmt: ast.stmt, receiver: str
    ) -> Optional[Tuple[int, str]]:
        """``(line, use)`` of the first disallowed use of ``receiver``."""
        for header in _stmt_exprs(stmt):
            for node in ast.walk(header):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and dotted_name(node.func.value) == receiver
                    and node.func.attr not in _POST_CLOSE_OK
                ):
                    return node.lineno, f".{node.func.attr}(...)"
                if (
                    isinstance(node, ast.Subscript)
                    and dotted_name(node.value) == receiver
                ):
                    return node.lineno, "subscript"
        return None


# ------------------------------------------- shared-state-without-lock


class SharedStateWithoutLock(Rule):
    """The process engine's global pruning bound lives in a
    ``multiprocessing`` shared array; workers read it to prune and the
    parent tightens it between batches.  One unlocked access turns the
    paper's bit-for-bit determinism claim into a data race: torn 8-byte
    reads are rare enough to pass every test and wrong enough to corrupt
    a benchmark.  Taint starts at ``Value``/``Array``/``SharedMemory``
    construction, flows through ``np.frombuffer`` views, locals, and
    call arguments (including ``Process(target=..., args=...)`` into
    worker entry points), and every element access outside a lock-held
    ``with`` block is flagged.  Escapes: ``_SINGLE_WRITER`` class
    annotations, and callees invoked *only* with the lock already held."""

    name = "shared-state-without-lock"
    summary = (
        "read/write of multiprocessing shared memory outside a "
        "lock-held with block"
    )
    default_scope = ("repro",)
    example_bad = """\
def _worker(shared, lock):
    view = np.frombuffer(shared, dtype=np.float64)
    bound = view[0]          # torn read: writer may be mid-store
"""
    example_good = """\
def _worker(shared, lock):
    view = np.frombuffer(shared, dtype=np.float64)
    with lock:
        bound = view[0]      # lock serializes against the writer
"""

    _MAX_ROUNDS = 20

    def check_project(
        self, modules: Sequence[ModuleInfo], config: LintConfig
    ) -> Iterator[Finding]:
        """Flag unlocked accesses to interprocedurally tainted buffers."""
        in_scope = [
            module for module in modules
            if self.applies_to(module.name, config)
        ]
        if not in_scope:
            return
        index = ProjectIndex(in_scope)
        facts_by_func: Dict[str, Optional[_ClassFacts]] = {}
        taint: Dict[str, Dict[str, str]] = {}
        for module in in_scope:
            aliases = index.aliases.get(module.name, {})
            self._collect_module(
                module, aliases, config, facts_by_func, taint
            )
        call_sites = self._propagate(index, config, facts_by_func, taint)
        yield from self._report(index, config, facts_by_func, taint, call_sites)

    def _collect_module(
        self,
        module: ModuleInfo,
        aliases: Dict[str, str],
        config: LintConfig,
        facts_by_func: Dict[str, Optional[_ClassFacts]],
        taint: Dict[str, Dict[str, str]],
    ) -> None:
        """Seed per-function taint from each function's local scan."""

        def visit(
            body: Sequence[ast.stmt],
            prefix: str,
            facts: Optional[_ClassFacts],
        ) -> None:
            for node in body:
                if isinstance(node, ast.ClassDef):
                    visit(
                        node.body,
                        f"{prefix}.{node.name}",
                        _class_facts(node, aliases, config),
                    )
                elif isinstance(node, _FUNC_TYPES):
                    qualname = f"{prefix}.{node.name}"
                    facts_by_func[qualname] = facts
                    scan = _scan_function(node, aliases, config, facts)
                    taint[qualname] = dict(scan.shared)
                    visit(node.body, qualname, facts)

        visit(module.tree.body, module.name, None)

    def _propagate(
        self,
        index: ProjectIndex,
        config: LintConfig,
        facts_by_func: Dict[str, Optional[_ClassFacts]],
        taint: Dict[str, Dict[str, str]],
    ) -> Dict[str, List[Tuple[str, int]]]:
        """Push taint through call arguments until a fixpoint (bounded)."""
        call_sites: Dict[str, List[Tuple[str, int]]] = {}
        for _ in range(self._MAX_ROUNDS):
            changed = False
            call_sites = {}
            for qualname, info in sorted(index.functions.items()):
                aliases = index.aliases.get(info.module.name, {})
                facts = facts_by_func.get(qualname)
                self._rescan(info, aliases, config, facts, taint[qualname])
                for call in self._own_calls(info.node):
                    spawned = self._process_target(index, info, call)
                    callee = (
                        spawned
                        if spawned is not None
                        else self._resolve_callee(index, info, call, aliases)
                    )
                    if callee is None or callee not in taint:
                        continue
                    call_sites.setdefault(callee, []).append(
                        (qualname, call.lineno)
                    )
                    changed |= self._bind_args(
                        index, call, callee, qualname, facts, taint,
                        spawned is not None,
                    )
            if not changed:
                break
        return call_sites

    @staticmethod
    def _own_calls(func: ast.AST) -> Iterator[ast.Call]:
        for node in _own_nodes(func):
            if isinstance(node, ast.Call):
                yield node

    @staticmethod
    def _process_target(
        index: ProjectIndex, info: FunctionInfo, call: ast.Call
    ) -> Optional[str]:
        """The worker entry point of a ``Process(target=...)`` call."""
        dotted = dotted_name(call.func)
        if dotted is None or _final(dotted) != "Process":
            return None
        target_kw = next(
            (kw for kw in call.keywords if kw.arg == "target"), None
        )
        if target_kw is None:
            return None
        local = dotted_name(target_kw.value)
        if local is None:
            return None
        absolute = index.resolve(info.module.name, local)
        return absolute if absolute in index.functions else None

    @staticmethod
    def _resolve_callee(
        index: ProjectIndex,
        info: FunctionInfo,
        call: ast.Call,
        aliases: Dict[str, str],
    ) -> Optional[str]:
        """Precise project-local resolution of one call target."""
        local = dotted_name(call.func)
        if local is None:
            return None
        if local.startswith("self."):
            rest = local[len("self."):]
            owner = _class_qualname(info)
            if owner is not None and "." not in rest:
                return index.resolve_method(owner, rest)
            return None
        absolute = index.resolve(info.module.name, local)
        if absolute in index.functions:
            return absolute
        if absolute in index.classes:
            return index.resolve_method(absolute, "__init__")
        return None

    def _bind_args(
        self,
        index: ProjectIndex,
        call: ast.Call,
        callee: str,
        caller: str,
        facts: Optional[_ClassFacts],
        taint: Dict[str, Dict[str, str]],
        spawned: bool,
    ) -> bool:
        """Taint callee parameters bound to tainted caller arguments."""
        callee_info = index.functions[callee]
        params = [
            arg.arg
            for arg in callee_info.node.args.args  # type: ignore[attr-defined]
        ]
        if params and params[0] in ("self", "cls"):
            params = params[1:]
        shared_attrs = facts.shared_attrs if facts is not None else {}
        caller_taint = taint[caller]
        changed = False
        bindings: List[Tuple[ast.AST, str, str]] = []
        if spawned:
            # Process(target=f, args=(...)) pickles the tuple into the
            # worker: each element binds positionally to f's parameters.
            args_kw = next(
                (kw for kw in call.keywords if kw.arg == "args"), None
            )
            if args_kw is not None and isinstance(args_kw.value, ast.Tuple):
                for position, elt in enumerate(args_kw.value.elts):
                    if position < len(params):
                        bindings.append(
                            (elt, params[position],
                             " (pickled to Process(target=...))")
                        )
        else:
            for position, arg in enumerate(call.args):
                if position < len(params):
                    bindings.append((arg, params[position], ""))
            for keyword in call.keywords:
                if keyword.arg is not None and keyword.arg in params:
                    bindings.append((keyword.value, keyword.arg, ""))
        for expr, param, note in bindings:
            desc = _shared_ref(expr, caller_taint, shared_attrs)
            if desc is None:
                continue
            if param not in taint[callee]:
                taint[callee][param] = f"{desc}{note}"
                changed = True
        return changed

    def _rescan(
        self,
        info: FunctionInfo,
        aliases: Dict[str, str],
        config: LintConfig,
        facts: Optional[_ClassFacts],
        func_taint: Dict[str, str],
    ) -> None:
        """Re-run local propagation (frombuffer views, aliases) over the
        function with its current taint as the seed."""
        shared_attrs = facts.shared_attrs if facts is not None else {}
        for node in _own_nodes(info.node):
            if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
                continue
            target, value = node.targets[0], node.value
            if not isinstance(target, ast.Name) or value is None:
                continue
            if isinstance(value, ast.Name) and value.id in func_taint:
                func_taint.setdefault(target.id, func_taint[value.id])
            elif isinstance(value, ast.Call):
                _, resolved = _call_target(value, aliases)
                if resolved == "numpy.frombuffer" and value.args:
                    desc = _shared_ref(value.args[0], func_taint, shared_attrs)
                    if desc is not None:
                        func_taint.setdefault(
                            target.id, f"{desc} (via np.frombuffer)"
                        )

    def _report(
        self,
        index: ProjectIndex,
        config: LintConfig,
        facts_by_func: Dict[str, Optional[_ClassFacts]],
        taint: Dict[str, Dict[str, str]],
        call_sites: Dict[str, List[Tuple[str, int]]],
    ) -> Iterator[Finding]:
        """Emit findings for unlocked accesses to tainted buffers."""
        locked_spans = {
            qualname: _locked_spans(info.node)
            for qualname, info in index.functions.items()
        }
        for qualname, info in sorted(index.functions.items()):
            func_taint = taint.get(qualname, {})
            facts = facts_by_func.get(qualname)
            shared_attrs = facts.shared_attrs if facts is not None else {}
            if not func_taint and not shared_attrs:
                continue
            if self._lock_held_at_all_sites(
                qualname, call_sites, locked_spans
            ):
                continue
            spans = locked_spans[qualname]
            emitted: Set[int] = set()
            for node in _own_nodes(info.node):
                desc = self._access_desc(node, func_taint, shared_attrs)
                if desc is None:
                    continue
                line = node.lineno
                if _in_spans(line, spans) or line in emitted:
                    continue
                emitted.add(line)
                yield self.finding(
                    info.module,
                    node,
                    f"unlocked access to {desc} in {qualname}; another "
                    f"process can interleave mid-read/write — wrap the "
                    f"access in `with <lock>:`, or declare the attribute "
                    f"in {config.single_writer_attr} if only one process "
                    f"ever writes it",
                )

    @staticmethod
    def _lock_held_at_all_sites(
        qualname: str,
        call_sites: Dict[str, List[Tuple[str, int]]],
        locked_spans: Dict[str, List[Tuple[int, int]]],
    ) -> bool:
        """True when every project call of ``qualname`` holds a lock —
        the callee inherits the caller's critical section."""
        sites = call_sites.get(qualname, [])
        if not sites:
            return False
        return all(
            _in_spans(line, locked_spans.get(caller, []))
            for caller, line in sites
        )

    @staticmethod
    def _access_desc(
        node: ast.AST,
        func_taint: Dict[str, str],
        shared_attrs: Dict[str, str],
    ) -> Optional[str]:
        """Description when ``node`` is an element access on shared state."""
        target: Optional[ast.AST] = None
        if isinstance(node, ast.Subscript):
            target = node.value
        elif isinstance(node, ast.Attribute) and node.attr == "value":
            target = node.value
        if target is None:
            return None
        if isinstance(target, ast.Name) and target.id in func_taint:
            return f"{func_taint[target.id]} ('{target.id}')"
        attr = _self_attr(target)
        if attr is not None and attr in shared_attrs:
            return f"{shared_attrs[attr]} (self.{attr})"
        return None


# --------------------------------------------------- spawn-unsafe-capture


class SpawnUnsafeCapture(Rule):
    """Everything in ``Process(target=..., args=...)`` — and everything
    ``put()`` onto a worker task queue — is pickled into the spawned
    child.  mmap-backed stores, open files, ``threading`` locks, and
    tracers either fail to pickle (best case) or arrive as disconnected
    copies that shadow the parent's state (worst case: the engine
    "works" and returns results from a stale mapping).  Workers must
    receive *identifiers* — paths, disk ids — and reopen resources
    inside the child, which is exactly what
    ``repro.parallel.process._worker_main`` does with its store
    directory."""

    name = "spawn-unsafe-capture"
    summary = (
        "mmap/file handle, threading lock, or tracer pickled into "
        "Process(args=...) or a worker task queue"
    )
    default_scope = ("repro",)
    example_bad = """\
store = MmapStore(directory)
proc = ctx.Process(target=_worker, args=(store, results))
# the store's mmap handles cannot survive the spawn pickle
"""
    example_good = """\
proc = ctx.Process(target=_worker, args=(directory, results))
# the worker reopens: store = MmapStore(directory)
"""

    def check_module(
        self, module: ModuleInfo, config: LintConfig
    ) -> Iterator[Finding]:
        """Flag spawn-unsafe values in Process args / task-queue puts."""
        aliases = import_aliases(module.tree)
        for func, facts in _functions_with_facts(module.tree, aliases, config):
            scan = _scan_function(func, aliases, config, facts)
            unsafe_attrs = facts.unsafe_attrs if facts is not None else {}
            queue_attrs = facts.queue_attrs if facts is not None else set()
            for call in self._own_calls(func):
                yield from self._check_call(
                    module, call, scan, unsafe_attrs, queue_attrs,
                    aliases, config,
                )

    @staticmethod
    def _own_calls(func: ast.AST) -> Iterator[ast.Call]:
        for node in _own_nodes(func):
            if isinstance(node, ast.Call):
                yield node

    def _check_call(
        self,
        module: ModuleInfo,
        call: ast.Call,
        scan: _FunctionScan,
        unsafe_attrs: Dict[str, str],
        queue_attrs: Set[str],
        aliases: Dict[str, str],
        config: LintConfig,
    ) -> Iterator[Finding]:
        dotted = dotted_name(call.func)
        if dotted is not None and _final(dotted) == "Process":
            for keyword in call.keywords:
                if keyword.arg != "args":
                    continue
                desc = _unsafe_in_expr(
                    keyword.value, scan, unsafe_attrs, aliases, config
                )
                if desc is not None:
                    yield self.finding(
                        module,
                        call,
                        f"Process(target=..., args=...) captures {desc}; "
                        f"it is pickled into the spawned worker, where "
                        f"mmap/file handles, threading locks and tracers "
                        f"do not survive — pass a path/identifier and "
                        f"reopen inside the worker",
                    )
            return
        if (
            isinstance(call.func, ast.Attribute)
            and call.func.attr in ("put", "put_nowait")
        ):
            receiver = call.func.value
            is_task_queue = (
                isinstance(receiver, ast.Name) and receiver.id in scan.queues
            ) or (_self_attr(receiver) in queue_attrs)
            if not is_task_queue:
                return
            for arg in call.args:
                desc = _unsafe_in_expr(
                    arg, scan, unsafe_attrs, aliases, config
                )
                if desc is not None:
                    yield self.finding(
                        module,
                        call,
                        f"task put() onto a worker queue captures {desc}; "
                        f"queue items are pickled across the process "
                        f"boundary — send a path/identifier and reopen "
                        f"inside the worker",
                    )


# ------------------------------------------------------------ ctx-required


class CtxRequired(Rule):
    """``multiprocessing.Process()`` binds the platform-default start
    method: ``fork`` on Linux, ``spawn`` on macOS/Windows.  Forked
    workers inherit mmap views, locks, and tracer state that spawned
    workers must reconstruct — so code that only ever ran under fork is
    routinely broken under spawn, and results can differ between the
    two.  The engines pin ``get_context("spawn")`` (the strictest,
    portable semantics); this rule bans the bare module-level factories
    so the choice stays explicit everywhere."""

    name = "ctx-required"
    summary = (
        "bare multiprocessing.Process/Queue/Lock; use an explicit "
        'get_context("spawn") handle'
    )
    default_scope = ("repro",)
    example_bad = """\
import multiprocessing

queue = multiprocessing.Queue()
proc = multiprocessing.Process(target=work, args=(queue,))
"""
    example_good = """\
import multiprocessing

ctx = multiprocessing.get_context("spawn")
queue = ctx.Queue()
proc = ctx.Process(target=work, args=(queue,))
"""

    def check_module(
        self, module: ModuleInfo, config: LintConfig
    ) -> Iterator[Finding]:
        """Flag bare multiprocessing factory calls."""
        aliases = import_aliases(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            local, resolved = _call_target(node, aliases)
            if local is None or resolved is None:
                continue
            final = _final(local)
            if final in _MP_BARE and resolved == f"multiprocessing.{final}":
                yield self.finding(
                    module,
                    node,
                    f"bare multiprocessing.{final} binds the "
                    f"platform-default start method (fork on Linux, spawn "
                    f"on macOS/Windows) and makes behavior "
                    f"platform-dependent; create an explicit context — "
                    f'ctx = multiprocessing.get_context("spawn") — and '
                    f"call ctx.{final}",
                )


#: The lifetime/process-safety rules, in reporting order.
LIFETIME_RULES: Tuple[type, ...] = (
    ResourceLeak,
    UseAfterClose,
    SharedStateWithoutLock,
    SpawnUnsafeCapture,
    CtxRequired,
)
