"""Project-wide symbol table and call graph for cross-module lint rules.

The per-module rules in :mod:`repro.lint.rules` see one AST at a time;
the dataflow rules in :mod:`repro.lint.dataflow` need to answer
*whole-program* questions — "can an engine entry point reach this
``DiskArray.charge`` call?" — so this module builds the shared
infrastructure once per lint run:

* :class:`ProjectIndex` — every function/method in the linted tree under
  its dotted qualified name (``repro.parallel.engine.ParallelEngine
  ._fetch``), plus per-module import-alias tables resolved to absolute
  dotted names;
* :class:`CallGraph` — resolved call edges between those functions.

Resolution is deliberately conservative-but-useful (class-hierarchy-
analysis style): ``self.m(...)`` resolves to the enclosing class's own
method, then to project-local base classes; plain and dotted names
resolve through the import table; an attribute call that cannot be
resolved precisely (``self._engine.query(...)``) falls back to *every*
project function with that method name.  Over-approximating edges is the
right failure mode for reachability-based rules: a violation is never
hidden by a missed edge.
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.lint.module import ModuleInfo

__all__ = ["FunctionInfo", "ProjectIndex", "CallGraph", "dotted_name",
           "import_aliases"]

FunctionNode = ast.FunctionDef  # AsyncFunctionDef handled via tuple below
_FUNC_TYPES = (ast.FunctionDef, ast.AsyncFunctionDef)


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def import_aliases(tree: ast.Module) -> Dict[str, str]:
    """Map local names to the absolute dotted things they refer to.

    ``import numpy as np`` -> ``{"np": "numpy"}``; ``from repro.parallel
    import disks as dk`` -> ``{"dk": "repro.parallel.disks"}``;
    ``from repro.parallel.disks import DiskArray`` ->
    ``{"DiskArray": "repro.parallel.disks.DiskArray"}``.
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                aliases[alias.asname or alias.name.split(".")[0]] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for alias in node.names:
                if alias.name == "*":
                    continue
                aliases[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}"
                )
    return aliases


@dataclass(frozen=True)
class FunctionInfo:
    """One function or method definition in the linted tree.

    ``qualname`` is the dotted address (module, enclosing classes, then
    the function name — nested functions chain through their parents);
    ``class_name`` is the innermost enclosing class, None for
    module-level functions.
    """

    qualname: str
    module: ModuleInfo
    node: ast.AST
    class_name: Optional[str] = None

    @property
    def name(self) -> str:
        """The unqualified function name."""
        return self.qualname.rsplit(".", 1)[-1]


class ProjectIndex:
    """Symbol table over every module of one lint run.

    Exposes ``functions`` (qualname -> :class:`FunctionInfo`),
    ``by_method_name`` (unqualified name -> qualnames) for
    class-hierarchy-analysis fallbacks, ``classes`` (dotted class name ->
    ``ast.ClassDef``) and per-module import aliases.
    """

    def __init__(self, modules: Sequence[ModuleInfo]):
        self.modules: Dict[str, ModuleInfo] = {m.name: m for m in modules}
        self.functions: Dict[str, FunctionInfo] = {}
        self.by_method_name: Dict[str, List[str]] = {}
        self.classes: Dict[str, ast.ClassDef] = {}
        self.aliases: Dict[str, Dict[str, str]] = {}
        for module in modules:
            self.aliases[module.name] = import_aliases(module.tree)
            self._collect(module, module.tree.body, module.name, None)

    def _collect(
        self,
        module: ModuleInfo,
        body: Sequence[ast.stmt],
        prefix: str,
        class_name: Optional[str],
    ) -> None:
        for node in body:
            if isinstance(node, _FUNC_TYPES):
                qualname = f"{prefix}.{node.name}"
                info = FunctionInfo(qualname, module, node, class_name)
                self.functions[qualname] = info
                self.by_method_name.setdefault(node.name, []).append(qualname)
                self._collect(module, node.body, qualname, class_name)
            elif isinstance(node, ast.ClassDef):
                qualname = f"{prefix}.{node.name}"
                self.classes[qualname] = node
                self._collect(module, node.body, qualname, node.name)

    def resolve(self, module_name: str, local_dotted: str) -> str:
        """Absolute dotted name for ``local_dotted`` seen in a module.

        The head segment is resolved through the module's import table;
        unresolvable heads fall back to ``module_name.local_dotted`` so
        module-local definitions are found.
        """
        aliases = self.aliases.get(module_name, {})
        head, _, rest = local_dotted.partition(".")
        if head in aliases:
            resolved = aliases[head]
            return f"{resolved}.{rest}" if rest else resolved
        return f"{module_name}.{local_dotted}"

    def base_classes(self, class_qualname: str) -> List[str]:
        """Project-local base-class qualnames of ``class_qualname``."""
        node = self.classes.get(class_qualname)
        if node is None:
            return []
        module_name = class_qualname.rsplit(".", 2)[0]
        # A nested class keeps its defining module as the resolution
        # context; walking off the front of the qualname finds it.  The
        # defining module may be absent entirely (linting a subtree
        # with no package __init__ modules), so stop at the last
        # segment rather than respinning on it forever.
        while module_name and module_name not in self.modules:
            head, sep, _ = module_name.rpartition(".")
            if not sep:
                module_name = ""
                break
            module_name = head
        bases: List[str] = []
        for base in node.bases:
            local = dotted_name(base)
            if local is None:
                continue
            resolved = self.resolve(module_name or class_qualname, local)
            if resolved in self.classes:
                bases.append(resolved)
        return bases

    def resolve_method(
        self, class_qualname: str, method: str
    ) -> Optional[str]:
        """``Class.method`` resolved through project-local inheritance."""
        seen: Set[str] = set()
        stack = [class_qualname]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            candidate = f"{current}.{method}"
            if candidate in self.functions:
                return candidate
            stack.extend(self.base_classes(current))
        return None


class CallGraph:
    """Resolved call edges over a :class:`ProjectIndex`.

    ``edges[caller]`` is the set of callee qualnames.  Unresolvable
    attribute calls contribute name-based edges to every project
    function with that method name (see the module docstring for why
    over-approximation is the safe direction).
    """

    def __init__(self, index: ProjectIndex):
        self.index = index
        self.edges: Dict[str, Set[str]] = {}
        for info in index.functions.values():
            self.edges[info.qualname] = set(self._callees(info))

    # ------------------------------------------------------- edge building

    def _own_calls(self, info: FunctionInfo) -> Iterator[ast.Call]:
        """Calls lexically inside ``info`` but not inside a nested def."""
        stack: List[ast.AST] = list(ast.iter_child_nodes(info.node))
        while stack:
            node = stack.pop()
            if isinstance(node, _FUNC_TYPES):
                continue  # nested function: its own graph node
            if isinstance(node, ast.Call):
                yield node
            stack.extend(ast.iter_child_nodes(node))

    def _class_qualname(self, info: FunctionInfo) -> Optional[str]:
        """Dotted name of the class that owns method ``info``, if any."""
        if info.class_name is None:
            return None
        qualname = info.qualname
        marker = f".{info.class_name}."
        head = qualname.rsplit(marker, 1)[0]
        return f"{head}{marker.rstrip('.')}" if marker in qualname else None

    def _callees(self, info: FunctionInfo) -> Iterator[str]:
        module_name = info.module.name
        class_qualname = self._class_qualname(info)
        # Nested functions are reachable from their enclosing function.
        parent = info.qualname.rsplit(".", 1)[0]
        if parent in self.index.functions:
            self.edges.setdefault(parent, set()).add(info.qualname)
        for call in self._own_calls(info):
            local = dotted_name(call.func)
            if local is None:
                # Method call on a computed receiver (``make()...x()``,
                # subscripts, ...): no dotted name, but the graph must
                # stay over-approximating — name-based fallback.
                if isinstance(call.func, ast.Attribute):
                    for candidate in self.index.by_method_name.get(
                        call.func.attr, ()
                    ):
                        yield candidate
                continue
            if local.startswith("self.") and class_qualname is not None:
                rest = local[len("self."):]
                if "." not in rest:
                    resolved = self.index.resolve_method(class_qualname, rest)
                    if resolved is not None:
                        yield resolved
                        continue
            absolute = self.index.resolve(module_name, local)
            if absolute in self.index.functions:
                yield absolute
                continue
            # ``Class(...)`` constructs an instance: edge to __init__.
            if absolute in self.index.classes:
                init = self.index.resolve_method(absolute, "__init__")
                if init is not None:
                    yield init
                continue
            # Unresolvable attribute call: name-based fallback.
            attr = local.rsplit(".", 1)[-1]
            if "." in local:
                for candidate in self.index.by_method_name.get(attr, ()):
                    yield candidate

    # -------------------------------------------------------------- queries

    def reachable_from(self, roots: Sequence[str]) -> Set[str]:
        """Every function reachable from ``roots`` (roots included)."""
        seen: Set[str] = set()
        queue = deque(root for root in roots if root in self.edges)
        seen.update(queue)
        while queue:
            current = queue.popleft()
            for callee in self.edges.get(current, ()):
                if callee not in seen:
                    seen.add(callee)
                    queue.append(callee)
        return seen

    def find_path(self, source: str, target: str) -> Optional[List[str]]:
        """Shortest call chain from ``source`` to ``target`` (BFS)."""
        if source not in self.edges:
            return None
        parents: Dict[str, str] = {}
        queue = deque([source])
        seen = {source}
        while queue:
            current = queue.popleft()
            if current == target:
                path = [current]
                while path[-1] != source:
                    path.append(parents[path[-1]])
                return list(reversed(path))
            for callee in sorted(self.edges.get(current, ())):
                if callee not in seen:
                    seen.add(callee)
                    parents[callee] = current
                    queue.append(callee)
        return None
