"""Repo-specific static analysis: machine-check the paper's invariants.

The reproduction's guarantees rest on code-level conventions — ``col``
stays O(d) bit-exact in ``core/bits.py``, experiments are seeded, only
buffer-pool misses are charged to the simulated disks.  This package
turns those conventions into AST-checked rules::

    python -m repro.lint src tests           # lint, exit 1 on findings
    python -m repro.lint --list-rules        # what is checked and why

Programmatic use::

    from repro.lint import run_lint
    findings = run_lint(["src"])             # [] when clean

See ``docs/linting.md`` for the rule catalogue and how to add a rule.
"""

from __future__ import annotations

from repro.lint.baseline import (
    load_baseline,
    render_baseline,
    subtract_baseline,
    write_baseline,
)
from repro.lint.concurrency import CONCURRENCY_RULES
from repro.lint.config import DEFAULT_CONFIG, LintConfig
from repro.lint.engine import ALL_RULES, all_rule_names, run_lint
from repro.lint.findings import Finding, render_json, render_text
from repro.lint.lifetime import LIFETIME_RULES
from repro.lint.rules import RULES, Rule, rule_names
from repro.lint.sarif import render_sarif

__all__ = [
    "ALL_RULES",
    "CONCURRENCY_RULES",
    "DEFAULT_CONFIG",
    "Finding",
    "LIFETIME_RULES",
    "LintConfig",
    "RULES",
    "Rule",
    "all_rule_names",
    "load_baseline",
    "render_baseline",
    "render_json",
    "render_sarif",
    "render_text",
    "rule_names",
    "run_lint",
    "subtract_baseline",
    "write_baseline",
]
