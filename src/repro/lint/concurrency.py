"""Async-safety rules: a static race/atomicity detector for the
serving layer.

``repro.serve`` promises that a fixed arrival trace plus a seed yields
bit-for-bit the same results as direct ``query_batch`` calls.  The
classic asyncio hazards — state mutated across an ``await``, wall time
leaking into virtual timestamps, tasks silently dropped — all break
that promise *probabilistically*, which is exactly the failure mode a
reproduction repository cannot tolerate.  This module extends the
project call graph (:mod:`repro.lint.callgraph`) into an async-aware
analysis:

* every function is classified sync/async through the import-resolved
  symbol table (:func:`async_functions`);
* each async function's *suspension points* (``await``, ``async for``,
  ``async with``) are computed (:func:`suspension_lines`);
* five cross-module rules consume those facts —
  :class:`AsyncAtomicityViolation`, :class:`NoWallClockInVirtualTime`,
  :class:`AsyncBlockingCall`, :class:`TaskLeak` and
  :class:`MissingAwait`.

The analysis shares the linter's over-approximation philosophy: call
edges may be spurious (name-based fallback) but are never missing, so
reachability-based rules cannot *hide* a violation.  The one deliberate
under-approximation is :class:`MissingAwait`, which only trusts
precisely resolved targets — a name-based guess there would drown the
signal in false positives (documented in ``docs/linting.md``).

Sanctioned escapes, in preference order: restructure the code (capture
attributes into locals before suspending — transfer ownership, don't
share), hold an ``async with ...lock:`` around the critical section,
declare a class-level ``_SINGLE_WRITER`` frozenset for attributes only
the scheduler task mutates, or — last resort — a same-line
``# repro-lint: disable=<rule>`` comment.
"""

from __future__ import annotations

import ast
from typing import (
    Dict,
    FrozenSet,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.lint.callgraph import (
    CallGraph,
    FunctionInfo,
    ProjectIndex,
    dotted_name,
)
from repro.lint.config import LintConfig
from repro.lint.findings import Finding
from repro.lint.module import ModuleInfo
from repro.lint.rules import Rule

__all__ = [
    "async_functions",
    "suspension_lines",
    "AsyncAtomicityViolation",
    "NoWallClockInVirtualTime",
    "AsyncBlockingCall",
    "TaskLeak",
    "MissingAwait",
    "CONCURRENCY_RULES",
]

_FUNC_TYPES = (ast.FunctionDef, ast.AsyncFunctionDef)

#: AST nodes at which an async function can yield control to the event
#: loop (``async for`` suspends per iteration, ``async with`` on
#: enter/exit).
_SUSPEND_TYPES = (ast.Await, ast.AsyncFor, ast.AsyncWith)

_LOOP_TYPES = (ast.For, ast.While, ast.AsyncFor)


def _own_nodes(func: ast.AST) -> Iterator[ast.AST]:
    """Nodes lexically inside ``func`` but not inside a nested def."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        if isinstance(node, _FUNC_TYPES):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def suspension_lines(func: ast.AST) -> Tuple[int, ...]:
    """Sorted line numbers where ``func`` can suspend (its own body
    only — a nested coroutine suspends on its *own* schedule)."""
    return tuple(
        sorted(
            node.lineno
            for node in _own_nodes(func)
            if isinstance(node, _SUSPEND_TYPES)
        )
    )


def async_functions(index: ProjectIndex) -> FrozenSet[str]:
    """Qualnames of every ``async def`` in the project index."""
    return frozenset(
        qualname
        for qualname, info in index.functions.items()
        if isinstance(info.node, ast.AsyncFunctionDef)
    )


def _class_qualname(info: FunctionInfo) -> Optional[str]:
    """Dotted name of the class owning method ``info``, if any."""
    if info.class_name is None:
        return None
    marker = f".{info.class_name}."
    if marker not in info.qualname:
        return None
    head = info.qualname.rsplit(marker, 1)[0]
    return f"{head}.{info.class_name}"


def _self_accesses(
    func: ast.AST,
) -> Tuple[Dict[str, List[int]], Dict[str, List[int]]]:
    """``self.<attr>`` access lines in ``func``: ``(reads, writes)``.

    An augmented assignment (``self.x += 1``) is both — it reads the
    old value and writes the new one on the same line.
    """
    reads: Dict[str, List[int]] = {}
    writes: Dict[str, List[int]] = {}
    for node in _own_nodes(func):
        if isinstance(node, ast.AugAssign) and isinstance(
            node.target, ast.Attribute
        ):
            target = node.target
            if isinstance(target.value, ast.Name) and target.value.id == "self":
                reads.setdefault(target.attr, []).append(node.lineno)
                writes.setdefault(target.attr, []).append(node.lineno)
            continue
        if not (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            continue
        if isinstance(node.ctx, ast.Store):
            writes.setdefault(node.attr, []).append(node.lineno)
        elif isinstance(node.ctx, ast.Load):
            reads.setdefault(node.attr, []).append(node.lineno)
    return reads, writes


def _lockish(expr: ast.expr) -> bool:
    """True when a with-item's context expression looks like a lock."""
    name = dotted_name(expr)
    if name is None and isinstance(expr, ast.Call):
        name = dotted_name(expr.func)
    return bool(name) and any(
        fragment in name.lower() for fragment in ("lock", "mutex", "sem")
    )


def _locked_spans(func: ast.AST) -> List[Tuple[int, int]]:
    """``(first, last)`` line spans of lock-holding ``with`` blocks."""
    spans: List[Tuple[int, int]] = []
    for node in _own_nodes(func):
        if not isinstance(node, (ast.With, ast.AsyncWith)):
            continue
        if any(_lockish(item.context_expr) for item in node.items):
            spans.append((node.lineno, node.end_lineno or node.lineno))
    return spans


def _in_spans(line: int, spans: Sequence[Tuple[int, int]]) -> bool:
    """True when ``line`` falls inside any ``(first, last)`` span."""
    return any(first <= line <= last for first, last in spans)


def _single_writer_attrs(classdef: ast.ClassDef, attr_name: str) -> Set[str]:
    """String constants of the class-level single-writer annotation."""
    names: Set[str] = set()
    for stmt in classdef.body:
        targets: List[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets = [stmt.target]
        else:
            continue
        if not any(
            isinstance(t, ast.Name) and t.id == attr_name for t in targets
        ):
            continue
        value = stmt.value
        assert value is not None
        for node in ast.walk(value):
            if isinstance(node, ast.Constant) and isinstance(node.value, str):
                names.add(node.value)
    return names


class AsyncAtomicityViolation(Rule):
    """A static race detector for async methods.  Reading a shared
    attribute, suspending at an ``await``, then writing the attribute
    back is a read-modify-write whose middle another task can interleave
    — the canonical asyncio atomicity bug (it needs no threads, only two
    tasks and bad luck).  Flagged unless the critical section holds a
    lock, the attribute is declared in the class's ``_SINGLE_WRITER``
    annotation, or the method never suspends.  The interleaved-ordering
    check is lexical; a read *and* write of the same attribute inside
    one loop body that also suspends is flagged too, because iteration
    N's write follows iteration N-1's suspension."""

    name = "async-atomicity-violation"
    summary = ("shared attribute read before an await and written after "
               "it in an async method (no lock, no single-writer "
               "annotation)")
    default_scope = ("repro",)
    example_bad = (
        "async def admit(self, req):\n"
        "    n = self.in_flight          # read\n"
        "    await self.gate.wait()      # another task interleaves here\n"
        "    self.in_flight = n + 1      # stale write"
    )
    example_good = (
        "async def admit(self, req):\n"
        "    async with self.lock:\n"
        "        self.in_flight += 1"
    )

    def check_module(
        self, module: ModuleInfo, config: LintConfig
    ) -> Iterator[Finding]:
        """Flag read-await-write attribute races in async methods."""
        for classdef in ast.walk(module.tree):
            if not isinstance(classdef, ast.ClassDef):
                continue
            sanctioned = _single_writer_attrs(
                classdef, config.single_writer_attr
            )
            for stmt in classdef.body:
                if isinstance(stmt, ast.AsyncFunctionDef):
                    yield from self._check_method(
                        module, classdef, stmt, sanctioned
                    )

    def _check_method(
        self,
        module: ModuleInfo,
        classdef: ast.ClassDef,
        method: ast.AsyncFunctionDef,
        sanctioned: Set[str],
    ) -> Iterator[Finding]:
        suspends = suspension_lines(method)
        if not suspends:
            return
        reads, writes = _self_accesses(method)
        locked = _locked_spans(method)
        flagged: Set[str] = set()
        for attr, write_lines in sorted(writes.items()):
            if attr in sanctioned or attr not in reads:
                continue
            hit = self._straddling_write(
                reads[attr], suspends, write_lines, locked
            )
            if hit is not None:
                flagged.add(attr)
                yield self._race_finding(
                    module, classdef, method, attr, hit
                )
        yield from self._check_loops(
            module, classdef, method, sanctioned, locked, flagged
        )

    @staticmethod
    def _straddling_write(
        read_lines: Sequence[int],
        suspends: Sequence[int],
        write_lines: Sequence[int],
        locked: Sequence[Tuple[int, int]],
    ) -> Optional[Tuple[int, int]]:
        """``(await_line, write_line)`` of a read→await→write straddle."""
        first_read = min(read_lines)
        for write_line in sorted(write_lines):
            if _in_spans(write_line, locked):
                continue
            for suspend in suspends:
                if first_read < suspend < write_line:
                    return suspend, write_line
        return None

    def _check_loops(
        self,
        module: ModuleInfo,
        classdef: ast.ClassDef,
        method: ast.AsyncFunctionDef,
        sanctioned: Set[str],
        locked: Sequence[Tuple[int, int]],
        flagged: Set[str],
    ) -> Iterator[Finding]:
        """Read+write+suspend inside one loop body races across
        iterations even when the lexical order looks safe."""
        for loop in _own_nodes(method):
            if not isinstance(loop, _LOOP_TYPES):
                continue
            suspends = suspension_lines(loop)
            if isinstance(loop, ast.AsyncFor):
                suspends = tuple(sorted(set(suspends) | {loop.lineno}))
            if not suspends:
                continue
            reads, writes = _self_accesses(loop)
            for attr, write_lines in sorted(writes.items()):
                if (
                    attr in sanctioned
                    or attr in flagged
                    or attr not in reads
                ):
                    continue
                unlocked = [
                    line for line in write_lines
                    if not _in_spans(line, locked)
                ]
                if not unlocked:
                    continue
                flagged.add(attr)
                yield self._race_finding(
                    module, classdef, method, attr,
                    (suspends[0], unlocked[0]),
                )

    def _race_finding(
        self,
        module: ModuleInfo,
        classdef: ast.ClassDef,
        method: ast.AsyncFunctionDef,
        attr: str,
        hit: Tuple[int, int],
    ) -> Finding:
        suspend_line, write_line = hit
        site = ast.Constant(value=None)
        site.lineno = write_line  # anchor the finding at the write
        return self.finding(
            module, site,
            f"async method {classdef.name}.{method.name} reads "
            f"self.{attr}, may suspend at an await (line {suspend_line}),"
            f" then writes it (line {write_line}); another task can "
            f"interleave at the suspension and act on stale state — "
            f"capture the attribute into a local before awaiting, hold a "
            f"lock, or declare it in "
            f"{classdef.name}._SINGLE_WRITER",
        )


class NoWallClockInVirtualTime(Rule):
    """The virtual-time planner's timestamps must be pure functions of
    the arrival trace; one ``time.time()`` (or ``loop.time()``)
    reachable from a virtual-time entry point makes latencies — and
    through flush deadlines, batch composition — depend on machine
    speed.  Wall-clock reads live behind
    :class:`repro.serve.clock.LoopClock` (the sanctioned, exempted
    boundary) and nowhere else."""

    name = "no-wall-clock-in-virtual-time"
    summary = ("wall-clock read (time.time/monotonic, loop.time()) "
               "reachable from a virtual-time entry point")
    default_scope = ("repro",)
    #: ``repro.serve.clock`` is the sanctioned wall-clock boundary;
    #: experiment drivers legitimately measure real elapsed time.
    default_exempt = ("repro.serve.clock", "repro.experiments")
    example_bad = (
        "def stamp(self, event):\n"
        "    event.at = time.monotonic()   # machine-speed dependent"
    )
    example_good = (
        "def stamp(self, event):\n"
        "    event.at = self.clock.now()   # LoopClock / VirtualClock"
    )

    _WALL_TARGETS = frozenset(
        {
            "time.time",
            "time.time_ns",
            "time.monotonic",
            "time.monotonic_ns",
            "time.perf_counter",
            "time.perf_counter_ns",
            "time.process_time",
            "datetime.datetime.now",
            "datetime.datetime.utcnow",
        }
    )

    _LOOP_GETTERS = frozenset(
        {"asyncio.get_running_loop", "asyncio.get_event_loop"}
    )

    def _resolve(self, aliases: Dict[str, str], local: str) -> str:
        head, _, rest = local.partition(".")
        resolved = aliases.get(head, head)
        return f"{resolved}.{rest}" if rest else resolved

    def _wall_sites(
        self, func: ast.AST, aliases: Dict[str, str]
    ) -> Iterator[Tuple[ast.Call, str]]:
        """``(call, description)`` wall-clock reads in ``func``."""
        for node in _own_nodes(func):
            if not isinstance(node, ast.Call):
                continue
            local = dotted_name(node.func)
            if local is not None:
                resolved = self._resolve(aliases, local)
                if resolved in self._WALL_TARGETS:
                    yield node, f"{resolved}()"
                    continue
            if not (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "time"
            ):
                continue
            receiver = node.func.value
            # ``asyncio.get_running_loop().time()`` — the receiver is
            # itself a call to a loop getter.
            if isinstance(receiver, ast.Call):
                getter = dotted_name(receiver.func)
                if (
                    getter is not None
                    and self._resolve(aliases, getter) in self._LOOP_GETTERS
                ):
                    yield node, "asyncio event-loop time()"
                continue
            # ``loop.time()`` / ``self._loop.time()`` — a stored loop.
            receiver_name = dotted_name(receiver)
            if receiver_name is not None and "loop" in (
                receiver_name.rsplit(".", 1)[-1].lower()
            ):
                yield node, f"{receiver_name}.time()"

    def _roots(self, index: ProjectIndex, config: LintConfig) -> List[str]:
        """Virtual-time entry points present in this project."""
        roots = [
            qualname
            for qualname in config.virtual_time_roots
            if qualname in index.functions
        ]
        for qualname, info in index.functions.items():
            if (
                info.name == "run"
                and info.class_name is not None
                and info.class_name.endswith("Simulator")
            ):
                roots.append(qualname)
        return sorted(set(roots))

    def check_project(
        self, modules: Sequence[ModuleInfo], config: LintConfig
    ) -> Iterator[Finding]:
        """Flag wall-clock reads reachable from virtual-time roots."""
        in_scope = {m.name for m in modules if self.applies_to(m.name, config)}
        if not in_scope:
            return
        index = ProjectIndex(list(modules))
        roots = self._roots(index, config)
        if not roots:
            return
        graph = CallGraph(index)
        reachable = graph.reachable_from(roots)
        for qualname in sorted(reachable):
            info = index.functions[qualname]
            if info.module.name not in in_scope:
                continue
            aliases = index.aliases.get(info.module.name, {})
            for call, description in self._wall_sites(info.node, aliases):
                chain = ""
                for root in roots:
                    path = graph.find_path(root, qualname)
                    if path:
                        chain = "; reached from " + " -> ".join(path)
                        break
                yield self.finding(
                    info.module, call,
                    f"wall-clock read {description} in {qualname} is "
                    f"reachable from a virtual-time entry point — "
                    f"virtual timestamps must be pure functions of the "
                    f"arrival trace; read time through the injected "
                    f"Clock (repro.serve.clock) instead{chain}",
                )


class AsyncBlockingCall(Rule):
    """A blocking call anywhere in an ``async def``'s *synchronous* call
    chain stalls the event loop: no admission, no timer, no concurrent
    client makes progress until it returns.  Engine ``query`` /
    ``query_batch`` executions are the expensive case in this repository
    — offload them with ``asyncio.to_thread`` (which both unblocks the
    loop and, passing the function by reference, drops the synchronous
    call edge this rule traverses)."""

    name = "async-blocking-call"
    summary = ("blocking call (time.sleep, file I/O, sync engine query) "
               "reachable inside an async def without executor offload")
    default_scope = ("repro",)
    example_bad = (
        "async def handle(self, query):\n"
        "    return self.engine.query(query, k)   # stalls the loop"
    )
    example_good = (
        "async def handle(self, query):\n"
        "    return await asyncio.to_thread(self.engine.query, query, k)"
    )

    _BLOCKING_TARGETS = frozenset(
        {
            "time.sleep",
            "subprocess.run",
            "subprocess.check_call",
            "subprocess.check_output",
            "urllib.request.urlopen",
            "socket.create_connection",
        }
    )

    #: Sync engine entry points; receivers must look engine-ish so a
    #: dict's ``.query`` helper elsewhere is not misflagged.
    _ENGINE_METHODS = frozenset({"query", "query_batch"})

    def _resolve(self, aliases: Dict[str, str], local: str) -> str:
        head, _, rest = local.partition(".")
        resolved = aliases.get(head, head)
        return f"{resolved}.{rest}" if rest else resolved

    def _blocking_sites(
        self, func: ast.AST, aliases: Dict[str, str]
    ) -> Iterator[Tuple[ast.Call, str]]:
        """``(call, description)`` blocking calls in ``func``."""
        for node in _own_nodes(func):
            if not isinstance(node, ast.Call):
                continue
            local = dotted_name(node.func)
            if local is None:
                continue
            resolved = self._resolve(aliases, local)
            if resolved in self._BLOCKING_TARGETS:
                yield node, f"{resolved}()"
                continue
            if resolved == "open" or resolved == "builtins.open":
                yield node, "open() file I/O"
                continue
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in self._ENGINE_METHODS
            ):
                receiver = dotted_name(node.func.value)
                if receiver is not None and "engine" in receiver.lower():
                    yield node, f"sync {receiver}.{node.func.attr}()"

    def check_project(
        self, modules: Sequence[ModuleInfo], config: LintConfig
    ) -> Iterator[Finding]:
        """Flag blocking sites on async functions' sync call chains.

        BFS from each async function over the call graph, *not*
        expanding through other async callees — an awaited coroutine's
        blocking work is attributed to that coroutine, where the fix
        belongs.  The finding reconstructs the async entry's path so
        the offending frame is obvious.
        """
        in_scope = {m.name for m in modules if self.applies_to(m.name, config)}
        if not in_scope:
            return
        index = ProjectIndex(list(modules))
        coroutines = async_functions(index)
        if not coroutines:
            return
        graph = CallGraph(index)
        reported: Set[Tuple[str, int]] = set()
        for root in sorted(coroutines):
            root_info = index.functions[root]
            if root_info.module.name not in in_scope:
                continue
            parents: Dict[str, str] = {}
            seen = {root}
            queue = [root]
            while queue:
                current = queue.pop(0)
                info = index.functions[current]
                if info.module.name in in_scope:
                    aliases = index.aliases.get(info.module.name, {})
                    for call, description in self._blocking_sites(
                        info.node, aliases
                    ):
                        key = (info.module.display_path, call.lineno)
                        if key in reported:
                            continue
                        reported.add(key)
                        path = [current]
                        while path[-1] != root:
                            path.append(parents[path[-1]])
                        chain = " -> ".join(reversed(path))
                        yield self.finding(
                            info.module, call,
                            f"blocking call {description} in {current} "
                            f"runs on the event loop (reached from async "
                            f"{chain}); offload it with asyncio.to_thread"
                            f" / run_in_executor so concurrent clients "
                            f"keep being served",
                        )
                for callee in sorted(graph.edges.get(current, ())):
                    if callee in seen or callee in coroutines:
                        continue
                    seen.add(callee)
                    parents[callee] = current
                    queue.append(callee)


class TaskLeak(Rule):
    """``asyncio.create_task`` returns the only strong reference the
    caller is guaranteed; dropping it lets the task be garbage-collected
    mid-flight and silently discards its exception.  Store the handle
    (and await or cancel it on shutdown) — exactly what
    ``QueryService.start`` / ``stop`` do with the scheduler task."""

    name = "task-leak"
    summary = ("asyncio.create_task / ensure_future result discarded; "
               "store the task and await/cancel it on shutdown")
    default_scope = ("repro",)
    example_bad = "asyncio.create_task(self._flush_loop())"
    example_good = (
        "self._flusher = asyncio.create_task(self._flush_loop())\n"
        "# ... and in stop():  self._flusher.cancel(); await gather(...)"
    )

    _SPAWNERS = frozenset({"create_task", "ensure_future"})

    def check_module(
        self, module: ModuleInfo, config: LintConfig
    ) -> Iterator[Finding]:
        """Flag statement-position task spawns whose handle is dropped."""
        for node in ast.walk(module.tree):
            if not (
                isinstance(node, ast.Expr)
                and isinstance(node.value, ast.Call)
            ):
                continue
            call = node.value
            target = dotted_name(call.func)
            if target is None:
                continue
            if target.rsplit(".", 1)[-1] not in self._SPAWNERS:
                continue
            yield self.finding(
                module, call,
                f"result of {target}(...) is discarded; the spawned task "
                f"holds no strong reference and can be garbage-collected "
                f"mid-flight, losing its exceptions — assign it and "
                f"await/cancel it on shutdown",
            )


class MissingAwait(Rule):
    """Calling an ``async def`` builds a coroutine object; without an
    ``await`` (or ``create_task``/``gather``) the body never runs and
    Python only mentions it in a destructor warning nobody reads in CI.
    Flagged for *precisely resolved* targets only — project functions
    reached through ``self.`` or import resolution — because a
    name-based guess here would misfire on every sync method sharing a
    name with an async one (a deliberate under-approximation)."""

    name = "missing-await"
    summary = ("call to an async function in statement position without "
               "await; the coroutine never runs")
    default_scope = ("repro",)
    example_bad = (
        "async def stop(self):\n"
        "    self.drain()                # async def — body never runs"
    )
    example_good = (
        "async def stop(self):\n"
        "    await self.drain()"
    )

    def check_project(
        self, modules: Sequence[ModuleInfo], config: LintConfig
    ) -> Iterator[Finding]:
        """Flag discarded coroutine calls with precise resolution."""
        in_scope = [m for m in modules if self.applies_to(m.name, config)]
        if not in_scope:
            return
        index = ProjectIndex(list(modules))
        coroutines = async_functions(index)
        if not coroutines:
            return
        scoped = {m.name for m in in_scope}
        for qualname, info in sorted(index.functions.items()):
            if info.module.name not in scoped:
                continue
            for node in _own_nodes(info.node):
                if not (
                    isinstance(node, ast.Expr)
                    and isinstance(node.value, ast.Call)
                ):
                    continue
                target = self._resolve_target(index, info, node.value)
                if target is None or target not in coroutines:
                    continue
                yield self.finding(
                    info.module, node.value,
                    f"{qualname} calls async {target} in statement "
                    f"position without await: the coroutine object is "
                    f"created and dropped, its body never runs — await "
                    f"it (or hand it to asyncio.create_task and keep "
                    f"the handle)",
                )

    @staticmethod
    def _resolve_target(
        index: ProjectIndex, info: FunctionInfo, call: ast.Call
    ) -> Optional[str]:
        """Precise project-local resolution of one call target."""
        local = dotted_name(call.func)
        if local is None:
            return None
        if local.startswith("self."):
            rest = local[len("self."):]
            owner = _class_qualname(info)
            if owner is not None and "." not in rest:
                return index.resolve_method(owner, rest)
            return None
        absolute = index.resolve(info.module.name, local)
        if absolute in index.functions:
            return absolute
        return None


#: The async-safety rules, in reporting order.
CONCURRENCY_RULES: Tuple[type, ...] = (
    AsyncAtomicityViolation,
    NoWallClockInVirtualTime,
    AsyncBlockingCall,
    TaskLeak,
    MissingAwait,
)
