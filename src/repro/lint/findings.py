"""Finding record and output formatting for the repo linter.

A :class:`Finding` is one violated invariant at one source location.  The
two renderers match what CI and editors expect: ``text`` is the classic
``path:line: [rule] message`` one-line-per-finding format, ``json`` is a
machine-readable list suitable for tooling.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import List, Sequence

__all__ = ["Finding", "render_text", "render_json"]


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation: where it is, which rule, and what to do."""

    path: str
    line: int
    rule: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def render_text(findings: Sequence[Finding]) -> str:
    """One line per finding plus a trailing count summary."""
    lines: List[str] = [finding.format() for finding in findings]
    noun = "finding" if len(findings) == 1 else "findings"
    lines.append(f"{len(findings)} {noun}")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding]) -> str:
    """A JSON document: ``{"findings": [...], "count": N}``."""
    payload = {
        "findings": [asdict(finding) for finding in findings],
        "count": len(findings),
    }
    return json.dumps(payload, indent=2, sort_keys=True)
