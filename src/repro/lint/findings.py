"""Finding record and output formatting for the repo linter.

A :class:`Finding` is one violated invariant at one source location.  The
two renderers match what CI and editors expect: ``text`` is the classic
``path:line: [rule] message`` one-line-per-finding format, ``json`` is a
machine-readable list suitable for tooling.

Findings carry a ``severity``: ``"error"`` (the default — fails the lint
run) or ``"warn"`` (reported, rendered with a ``warning:`` prefix, but
does not affect the exit status — used by advisory rules like
``no-missing-public-docstring``).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass
from typing import List, Sequence

__all__ = ["Finding", "render_text", "render_json", "error_findings"]


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation: where it is, which rule, and what to do."""

    path: str
    line: int
    rule: str
    message: str
    severity: str = "error"

    def format(self) -> str:
        """The ``path:line: [rule] message`` one-liner (warnings are
        prefixed)."""
        label = "" if self.severity == "error" else f"{self.severity}ing: "
        return f"{self.path}:{self.line}: [{self.rule}] {label}{self.message}"

    def fingerprint(self) -> str:
        """Stable identity for baselines and SARIF ``partialFingerprints``.

        Hashes ``path | rule | severity | message`` — deliberately not
        the line number, so edits that merely shift a finding within a
        file do not invalidate a committed baseline.
        """
        basis = "|".join((self.path, self.rule, self.severity, self.message))
        return hashlib.sha256(basis.encode("utf-8")).hexdigest()[:16]


def error_findings(findings: Sequence[Finding]) -> List[Finding]:
    """The subset of ``findings`` that should fail a lint run."""
    return [f for f in findings if f.severity == "error"]


def render_text(findings: Sequence[Finding]) -> str:
    """One line per finding plus a trailing count summary."""
    lines: List[str] = [finding.format() for finding in findings]
    noun = "finding" if len(findings) == 1 else "findings"
    warnings = len(findings) - len(error_findings(findings))
    suffix = f" ({warnings} warn)" if warnings else ""
    lines.append(f"{len(findings)} {noun}{suffix}")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding]) -> str:
    """A JSON document: ``{"findings": [...], "count": N}``."""
    payload = {
        "findings": [asdict(finding) for finding in findings],
        "count": len(findings),
    }
    return json.dumps(payload, indent=2, sort_keys=True)
