"""Cross-module dataflow rules over the project call graph.

These rules check invariants no single-module AST pass can see:

* :class:`NoUnchargedDiskRead` — every ``DiskArray.charge`` call site
  must be *pool-sanctioned* (flow through the attached
  :class:`~repro.parallel.cache.BufferPool`, or sit behind an explicit
  ``cache is None`` cold-path guard), wherever in the tree it lives; the
  finding names the engine/simulator entry point that reaches it.
* :class:`TracerGuardRequired` — hot-path calls into a
  :class:`~repro.obs.tracer.Tracer` must be dominated by a
  ``tracer.enabled`` guard so the null tracer stays zero-overhead.
* :class:`MetricInCatalogue` — metric-name string literals passed to a
  :class:`~repro.obs.metrics.MetricsRegistry` must exist in
  ``METRIC_CATALOGUE`` (checked statically, with the declared kind).
* :class:`NoUnvalidatedSchemeString` — scheme names/aliases resolve
  through :mod:`repro.registry`, never ad-hoc string comparison.

Guard detection is lexical dominance over the AST: a call is considered
guarded when an enclosing ``if``/conditional-expression test (or a local
flag assigned from one) establishes the required condition.  That is an
approximation — it does not prove the branch polarity — but it matches
how every sanctioned site in this repository is written and it cannot
*miss* an entirely unguarded call.
"""

from __future__ import annotations

import ast
from typing import (
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.lint.callgraph import CallGraph, ProjectIndex, dotted_name
from repro.lint.config import LintConfig, module_matches
from repro.lint.findings import Finding
from repro.lint.module import ModuleInfo
from repro.lint.rules import Rule

__all__ = [
    "NoUnchargedDiskRead",
    "TracerGuardRequired",
    "MetricInCatalogue",
    "NoUnvalidatedSchemeString",
    "DATAFLOW_RULES",
]

_FUNC_TYPES = (ast.FunctionDef, ast.AsyncFunctionDef)

#: Dotted-name fragments identifying a buffer-pool-ish receiver.
_POOLISH = ("cache", "pool", "buffer")


def _is_poolish(name: Optional[str]) -> bool:
    """True when a dotted name plausibly denotes the buffer pool."""
    if not name:
        return False
    lowered = name.lower()
    return any(fragment in lowered for fragment in _POOLISH)


def _walk_with_guards(
    node: ast.AST, guards: Tuple[ast.expr, ...] = ()
) -> Iterator[Tuple[ast.AST, Tuple[ast.expr, ...]]]:
    """Yield ``(node, enclosing_guard_tests)`` over a function body.

    Every ``if`` statement and conditional expression contributes its
    test to the guard stack of the nodes it dominates (both branches —
    see the module docstring on polarity).
    """
    yield node, guards
    if isinstance(node, ast.If):
        yield from _walk_with_guards(node.test, guards)
        extended = guards + (node.test,)
        for child in node.body + node.orelse:
            yield from _walk_with_guards(child, extended)
        return
    if isinstance(node, ast.IfExp):
        yield from _walk_with_guards(node.test, guards)
        extended = guards + (node.test,)
        yield from _walk_with_guards(node.body, extended)
        yield from _walk_with_guards(node.orelse, extended)
        return
    for child in ast.iter_child_nodes(node):
        yield from _walk_with_guards(child, guards)


def _module_functions(module: ModuleInfo) -> Iterator[ast.AST]:
    """Every function/method definition in ``module`` (including nested)."""
    for node in ast.walk(module.tree):
        if isinstance(node, _FUNC_TYPES):
            yield node


class NoUnchargedDiskRead(Rule):
    """Upgrade of ``charge-through-buffer-pool`` from module-allowlist to
    whole-program dataflow: *any* ``DiskArray.charge`` call — including
    those inside the sanctioned engine modules — must either follow a
    buffer-pool lookup (``pool.access(...)`` earlier in the same
    function) or sit behind an explicit ``cache is None`` cold-path
    guard.  The finding reports the engine/simulator entry point whose
    call chain reaches the uncharged read, so a helper module smuggling
    raw disk reads under an engine is caught even though the engine
    module itself is allow-listed by the older local rule."""

    name = "no-uncharged-disk-read"
    summary = ("DiskArray.charge call that bypasses the buffer pool "
               "(no pool.access flow, no `cache is None` guard)")
    default_scope = ("repro",)
    #: Window queries are cold-by-design (no pool yet, documented in
    #: docs/linting.md); the disks/cache modules define the primitives.
    default_exempt = (
        "repro.parallel.window",
        "repro.parallel.disks",
        "repro.parallel.cache",
    )
    example_bad = (
        "def fetch(self, leaf):\n"
        "    self.disks.charge(leaf)         # no pool flow, no guard\n"
        "    return self.store.read_page(leaf)"
    )
    example_good = (
        "def fetch(self, leaf):\n"
        "    if self.cache is None or not self.cache.access(page_id):\n"
        "        self.disks.charge(leaf)     # miss (or cold) path only\n"
        "    return self.store.read_page(leaf)"
    )

    @staticmethod
    def _pool_access_lines(func: ast.AST) -> List[int]:
        """Line numbers of buffer-pool ``.access(...)`` lookups."""
        lines: List[int] = []
        for node in ast.walk(func):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "access"
                and _is_poolish(dotted_name(node.func.value))
            ):
                lines.append(node.lineno)
        return lines

    @staticmethod
    def _cache_none_guard(guards: Sequence[ast.expr]) -> bool:
        """True when a dominating test compares a pool name with None."""
        for guard in guards:
            for node in ast.walk(guard):
                if not isinstance(node, ast.Compare):
                    continue
                if not any(
                    isinstance(op, (ast.Is, ast.IsNot)) for op in node.ops
                ):
                    continue
                operands = [node.left, *node.comparators]
                if any(
                    _is_poolish(dotted_name(operand)) for operand in operands
                ):
                    return True
        return False

    def _unsanctioned_charges(
        self, func: ast.AST
    ) -> Iterator[ast.Call]:
        """Charge calls in ``func`` with neither pool flow nor guard."""
        access_lines = self._pool_access_lines(func)
        for node, guards in _walk_with_guards(func):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "charge"
            ):
                continue
            if any(line <= node.lineno for line in access_lines):
                continue
            if self._cache_none_guard(guards):
                continue
            yield node

    def _entry_points(self, index: ProjectIndex, config: LintConfig) -> List[str]:
        """Engine/simulator entry-point qualnames of this project."""
        return sorted(
            qualname
            for qualname, info in index.functions.items()
            if info.module.name.startswith("repro.parallel")
            and info.name in config.entry_point_names
            and info.class_name is not None
        )

    def check_project(
        self, modules: Sequence[ModuleInfo], config: LintConfig
    ) -> Iterator[Finding]:
        """Flag unsanctioned charge sites, naming a reaching entry point."""
        in_scope = [m for m in modules if self.applies_to(m.name, config)]
        if not in_scope:
            return
        index = ProjectIndex(list(modules))
        graph: Optional[CallGraph] = None
        entries: List[str] = []
        for module in in_scope:
            for qualname, info in index.functions.items():
                if info.module is not module:
                    continue
                for call in self._unsanctioned_charges(info.node):
                    if graph is None:
                        graph = CallGraph(index)
                        entries = self._entry_points(index, config)
                    chain = ""
                    for entry in entries:
                        path = graph.find_path(entry, qualname)
                        if path and len(path) > 1:
                            chain = (
                                "; reached from " + " -> ".join(path)
                            )
                            break
                    yield self.finding(
                        module, call,
                        f"DiskArray read in {qualname} is charged without "
                        f"flowing through the attached BufferPool (no "
                        f"pool.access(...) before it and no `cache is "
                        f"None` cold-path guard){chain}",
                    )


class TracerGuardRequired(Rule):
    """The observability contract (docs/observability.md) promises the
    null tracer is zero-overhead: engines pay one attribute read per
    instrumented site.  That only holds if every ``RecordingTracer``-
    emitting call on a hot path is dominated by a ``tracer.enabled``
    guard (directly, or through a local flag assigned from it)."""

    name = "tracer-guard-required"
    summary = ("tracer-emitting call on a hot path without a dominating "
               "tracer.enabled guard")
    default_scope = ("repro.parallel", "repro.index")
    example_bad = "self.tracer.page_read(disk, page_id)"
    example_good = (
        "if self.tracer.enabled:\n"
        "    self.tracer.page_read(disk, page_id)"
    )

    #: Tracer methods that allocate/emit when called unguarded.  ``record``
    #: is shared with Histogram, so receivers are also vetted (below).
    _EMITTING = frozenset(
        {
            "begin_query",
            "end_query",
            "node_visit",
            "page_read",
            "cache_hit",
            "cache_miss",
            "prune",
            "record",
        }
    )

    @staticmethod
    def _tracerish_names(module: ModuleInfo) -> Set[str]:
        """Local names that (transitively) hold a tracer in ``module``."""
        names: Set[str] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for arg in list(node.args.args) + list(node.args.kwonlyargs):
                    if "tracer" in arg.arg.lower():
                        names.add(arg.arg)
        changed = True
        while changed:
            changed = False
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Assign):
                    continue
                source = ast.dump(node.value)
                mentions_tracer = (
                    "tracer" in source.lower()
                    or any(
                        isinstance(ref, ast.Name) and ref.id in names
                        for ref in ast.walk(node.value)
                    )
                )
                if not mentions_tracer:
                    continue
                for target in node.targets:
                    if isinstance(target, ast.Name) and target.id not in names:
                        names.add(target.id)
                        changed = True
        return names

    @classmethod
    def _is_tracerish(cls, name: Optional[str], local: Set[str]) -> bool:
        """True when a dotted receiver plausibly denotes a tracer."""
        if not name:
            return False
        head = name.split(".", 1)[0]
        return "tracer" in name.lower() or head in local or (
            "." in name and "tracer" in name.split(".")[-1].lower()
        )

    @staticmethod
    def _guard_flags(module: ModuleInfo, tracerish: Set[str]) -> Set[str]:
        """Local flags assigned from ``<tracer>.enabled`` expressions."""
        flags: Set[str] = set()
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Assign):
                continue
            holds_enabled = any(
                isinstance(ref, ast.Attribute) and ref.attr == "enabled"
                for ref in ast.walk(node.value)
            )
            if not holds_enabled:
                continue
            for target in node.targets:
                if isinstance(target, ast.Name):
                    flags.add(target.id)
        return flags

    @classmethod
    def _guarded(
        cls,
        guards: Sequence[ast.expr],
        flags: Set[str],
    ) -> bool:
        """True when a dominating test checks ``.enabled`` or a flag."""
        for guard in guards:
            for node in ast.walk(guard):
                if isinstance(node, ast.Attribute) and node.attr == "enabled":
                    return True
                if isinstance(node, ast.Name) and node.id in flags:
                    return True
        return False

    def check_module(
        self, module: ModuleInfo, config: LintConfig
    ) -> Iterator[Finding]:
        """Flag unguarded tracer emissions in ``module``."""
        tracerish = self._tracerish_names(module)
        flags = self._guard_flags(module, tracerish)
        for node, guards in _walk_with_guards(module.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in self._EMITTING
            ):
                continue
            receiver = dotted_name(node.func.value)
            if not self._is_tracerish(receiver, tracerish):
                continue
            if self._guarded(guards, flags):
                continue
            yield self.finding(
                module, node,
                f"hot-path call {receiver}.{node.func.attr}(...) is not "
                f"dominated by a `tracer.enabled` guard; wrap it in "
                f"`if tracer.enabled:` so the null tracer stays "
                f"zero-overhead",
            )


class MetricInCatalogue(Rule):
    """``MetricsRegistry`` refuses undeclared names at runtime; this rule
    moves the check to lint time so an undocumented metric cannot even be
    merged.  Every string literal passed to ``.counter`` /
    ``.vector_counter`` / ``.histogram`` must appear in
    ``repro.obs.metrics.METRIC_CATALOGUE`` with the matching kind."""

    name = "metric-in-catalogue"
    summary = ("metric-name literal not declared (or declared with a "
               "different kind) in repro.obs.metrics.METRIC_CATALOGUE")
    default_scope = ("repro",)
    default_exempt = ("repro.obs.metrics",)
    example_bad = 'registry.counter("pages_fetched")   # not in the catalogue'
    example_good = (
        "# repro/obs/metrics.py\n"
        'METRIC_CATALOGUE = {..., "pages_fetched": "counter"}\n'
        "# call site\n"
        'registry.counter("pages_fetched")'
    )

    _KIND_FOR_METHOD = {
        "counter": "counter",
        "vector_counter": "vector",
        "histogram": "histogram",
    }

    @staticmethod
    def _parse_catalogue(module: ModuleInfo) -> Dict[str, str]:
        """``name -> kind`` parsed from the METRIC_CATALOGUE literal."""
        catalogue: Dict[str, str] = {}
        for node in ast.walk(module.tree):
            targets: List[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets = [node.target]
            else:
                continue
            if not any(
                isinstance(t, ast.Name) and t.id == "METRIC_CATALOGUE"
                for t in targets
            ):
                continue
            value = node.value
            for call in ast.walk(value):
                if not isinstance(call, ast.Call):
                    continue
                strings = [
                    arg.value
                    for arg in call.args[:2]
                    if isinstance(arg, ast.Constant)
                    and isinstance(arg.value, str)
                ]
                if len(strings) == 2:
                    catalogue[strings[0]] = strings[1]
        return catalogue

    def _metric_calls(
        self, module: ModuleInfo
    ) -> Iterator[Tuple[ast.Call, str, str]]:
        """``(call, literal_name, registry_kind)`` triples in ``module``."""
        for node in ast.walk(module.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in self._KIND_FOR_METHOD
            ):
                continue
            if not (
                node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)
            ):
                continue
            yield (
                node,
                node.args[0].value,
                self._KIND_FOR_METHOD[node.func.attr],
            )

    def check_project(
        self, modules: Sequence[ModuleInfo], config: LintConfig
    ) -> Iterator[Finding]:
        """Cross-check metric literals against the parsed catalogue."""
        in_scope = [m for m in modules if self.applies_to(m.name, config)]
        sites = [
            (module, call, name, kind)
            for module in in_scope
            for call, name, kind in self._metric_calls(module)
        ]
        if not sites:
            return
        catalogue_module = next(
            (m for m in modules if m.name == config.catalogue_module), None
        )
        if catalogue_module is None:
            catalogue_module = ModuleInfo.locate_sibling(
                sites[0][0], config.catalogue_module
            )
        if catalogue_module is None:
            module, call, name, _ = sites[0]
            yield self.finding(
                module, call,
                f"metric catalogue module {config.catalogue_module} not "
                f"found; metric name {name!r} cannot be checked",
            )
            return
        catalogue = self._parse_catalogue(catalogue_module)
        for module, call, name, kind in sites:
            declared = catalogue.get(name)
            if declared is None:
                yield self.finding(
                    module, call,
                    f"metric {name!r} is not declared in "
                    f"{config.catalogue_module}.METRIC_CATALOGUE; declare "
                    f"it (and regenerate docs/observability.md) before "
                    f"recording it",
                )
            elif declared != kind:
                yield self.finding(
                    module, call,
                    f"metric {name!r} is declared as {declared!r} in the "
                    f"catalogue but requested as {kind!r}",
                )


class NoUnvalidatedSchemeString(Rule):
    """Scheme spellings are registry data (``repro.registry.DECLUSTERERS``
    + ``SCHEME_ALIASES``), not code: comparing a scheme variable against
    a name/alias literal silently diverges the moment an alias is added
    or renamed.  Resolve through ``resolve_scheme``/``make_declusterer``
    instead."""

    name = "no-unvalidated-scheme-string"
    summary = ("ad-hoc ==/in comparison against a scheme name/alias "
               "literal; resolve through repro.registry")
    default_scope = ("repro",)
    default_exempt = ("repro.registry",)
    example_bad = 'if scheme == "disk_modulo": ...'
    example_good = (
        "from repro.registry import resolve_scheme\n"
        "declusterer_cls = resolve_scheme(scheme)"
    )

    @staticmethod
    def _scheme_literals(modules: Sequence[ModuleInfo], config: LintConfig) -> Set[str]:
        """Alias keys and scheme ``name`` attributes of the project."""
        literals: Set[str] = set()
        registry = next(
            (m for m in modules if m.name == config.registry_module), None
        )
        if registry is None and modules:
            registry = ModuleInfo.locate_sibling(
                modules[0], config.registry_module
            )
        if registry is not None:
            for node in ast.walk(registry.tree):
                targets: List[ast.expr] = []
                if isinstance(node, ast.Assign):
                    targets = node.targets
                elif (
                    isinstance(node, ast.AnnAssign) and node.value is not None
                ):
                    targets = [node.target]
                if not any(
                    isinstance(t, ast.Name) and t.id == "SCHEME_ALIASES"
                    for t in targets
                ):
                    continue
                if isinstance(node.value, ast.Dict):
                    for key in node.value.keys:
                        if isinstance(key, ast.Constant) and isinstance(
                            key.value, str
                        ):
                            literals.add(key.value)
        suffix = config.scheme_suffix
        for module in modules:
            for node in ast.walk(module.tree):
                if not (
                    isinstance(node, ast.ClassDef)
                    and node.name.endswith(suffix)
                ):
                    continue
                for stmt in node.body:
                    if (
                        isinstance(stmt, ast.Assign)
                        and any(
                            isinstance(t, ast.Name) and t.id == "name"
                            for t in stmt.targets
                        )
                        and isinstance(stmt.value, ast.Constant)
                        and isinstance(stmt.value.value, str)
                    ):
                        literals.add(stmt.value.value)
        return literals

    @staticmethod
    def _schemeish(node: ast.expr) -> bool:
        """True when an expression's dotted name mentions a scheme."""
        name = dotted_name(node)
        return bool(name) and "scheme" in name.lower()

    @classmethod
    def _literal_operands(cls, node: ast.expr, literals: Set[str]) -> List[str]:
        """Scheme literals appearing in one comparison operand."""
        found: List[str] = []
        candidates: List[ast.expr] = [node]
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            candidates = list(node.elts)
        for candidate in candidates:
            if isinstance(candidate, ast.Constant) and isinstance(
                candidate.value, str
            ) and candidate.value in literals:
                found.append(candidate.value)
        return found

    def check_project(
        self, modules: Sequence[ModuleInfo], config: LintConfig
    ) -> Iterator[Finding]:
        """Flag scheme-literal comparisons outside the registry."""
        in_scope = [m for m in modules if self.applies_to(m.name, config)]
        if not in_scope:
            return
        literals = self._scheme_literals(list(modules), config)
        if not literals:
            return
        for module in in_scope:
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Compare):
                    continue
                if not any(
                    isinstance(op, (ast.Eq, ast.NotEq, ast.In, ast.NotIn))
                    for op in node.ops
                ):
                    continue
                operands = [node.left, *node.comparators]
                matched = [
                    literal
                    for operand in operands
                    for literal in self._literal_operands(operand, literals)
                ]
                if not matched:
                    continue
                if not any(self._schemeish(operand) for operand in operands):
                    continue
                yield self.finding(
                    module, node,
                    f"ad-hoc comparison against scheme spelling "
                    f"{matched[0]!r}; resolve through repro.registry "
                    f"(resolve_scheme / make_declusterer) so aliases "
                    f"cannot drift",
                )


#: The cross-module rules, in reporting order.
DATAFLOW_RULES: Tuple[type, ...] = (
    NoUnchargedDiskRead,
    TracerGuardRequired,
    MetricInCatalogue,
    NoUnvalidatedSchemeString,
)
