"""Out-of-core page storage: per-disk mmap page files + MmapStore.

The storage layer moves data-page payloads out of process memory into
one memory-mapped file per simulated disk, while the tree directory
stays RAM-resident (the paper's shared-directory model).  See
``docs/storage.md`` for the file format and the charging contract.
"""

from __future__ import annotations

from repro.storage.bulk import (
    DEFAULT_MAX_RAM_BYTES,
    SPILL_DIR_NAME,
    bulk_load_mmap,
    stream_bulk_load_mmap,
)
from repro.storage.mmap_store import (
    SIMULATED_DISK_MS_ENV,
    MmapStore,
    load_mmap_store,
    save_mmap_store,
)
from repro.storage.pagefile import (
    HEADER_BYTES,
    PAGEFILE_FORMAT_VERSION,
    PAGEFILE_MAGIC,
    PageFile,
    PageFileWriter,
    PageFormatError,
    SlotOverflowError,
    payload_bytes,
)
from repro.storage.spill import SpillFile, sort_segment

__all__ = [
    "MmapStore",
    "save_mmap_store",
    "load_mmap_store",
    "bulk_load_mmap",
    "stream_bulk_load_mmap",
    "DEFAULT_MAX_RAM_BYTES",
    "SPILL_DIR_NAME",
    "SpillFile",
    "sort_segment",
    "PageFile",
    "PageFileWriter",
    "PageFormatError",
    "SlotOverflowError",
    "payload_bytes",
    "PAGEFILE_MAGIC",
    "PAGEFILE_FORMAT_VERSION",
    "HEADER_BYTES",
    "SIMULATED_DISK_MS_ENV",
]
