"""Spill files: bounded-RAM external sorting for the streaming bulk load.

The streaming STR builder (:func:`repro.storage.bulk.stream_bulk_load_mmap`)
never holds the dataset in memory.  Instead it keeps *records* — rows of
``dimension + 1`` float64 values, the point coordinates followed by the
point's original position — in flat binary files under a ``.spill``
directory inside the store directory, and sorts segments of those files
with a classic external merge sort:

1. read the segment in chunks of at most ``chunk_rows`` rows,
2. stable-sort each chunk in RAM and write it out as a sorted *run*,
3. k-way merge the runs (``heapq.merge``) back into the destination file,
   cascading through intermediate runs when the fan-in exceeds
   :data:`DEFAULT_MERGE_FANIN`.

Stability matters: the in-memory builder uses ``np.argsort(...,
kind="stable")``, whose ties keep their original order.  Chunk ``c``
holds exactly the rows ``[c * chunk_rows, (c+1) * chunk_rows)`` of the
segment, so every row in run ``c`` precedes (in original order) every
row in run ``c+1`` — and ``heapq.merge`` breaks key ties in favour of
earlier iterables.  Merging the runs in chunk order therefore
reproduces the exact permutation of one global stable sort, which is
what makes the streamed store byte-identical to the in-memory one.

Every :class:`SpillFile` is a closeable resource tracked by the
``resource-leak`` lint rule: the builder deletes each one on all paths
(exception edges included) via ``try/finally``, so a crash mid-merge
leaves no orphaned spill files behind.
"""

from __future__ import annotations

import heapq
import os
from pathlib import Path
from typing import IO, Callable, Iterator, List, Optional, Tuple, Union

import numpy as np

__all__ = [
    "DEFAULT_MERGE_FANIN",
    "SpillFile",
    "sort_segment",
]

#: Maximum number of sorted runs merged in one ``heapq.merge`` pass;
#: beyond this the sort cascades through intermediate runs so the number
#: of concurrently buffered run blocks stays bounded.
DEFAULT_MERGE_FANIN = 32

_FLOAT_BYTES = 8


class SpillFile:
    """A flat binary file of fixed-width float64 record rows.

    Used both for the two ping-pong record files of the streaming
    builder and for the sorted runs of the external sort.  All I/O is
    buffered ``seek``/``read``/``write`` — never ``mmap`` — so touched
    bytes live in the OS page cache, not in this process's RSS, and the
    builder's peak memory stays bounded by its chunk size.

    Instances own an open file handle; call :meth:`close` (keep the
    file) or :meth:`delete` (close and unlink) on every path.
    """

    def __init__(self, path: Union[str, os.PathLike], width: int):
        if width < 1:
            raise ValueError(f"record width must be >= 1, got {width}")
        self.path = os.fspath(path)
        self.width = int(width)
        self._row_bytes = _FLOAT_BYTES * self.width
        self._rows = 0
        self._file: Optional[IO[bytes]] = open(self.path, "w+b")

    @property
    def rows(self) -> int:
        """Number of record rows written so far (high-water mark)."""
        return self._rows

    def _handle(self) -> IO[bytes]:
        if self._file is None:
            raise ValueError(f"spill file {self.path!r} already closed")
        return self._file

    def _coerce(self, rows: np.ndarray) -> np.ndarray:
        block = np.ascontiguousarray(rows, dtype=np.float64)
        if block.ndim != 2 or block.shape[1] != self.width:
            raise ValueError(
                f"rows must be (m, {self.width}), got shape {block.shape}"
            )
        return block

    def append(self, rows: np.ndarray) -> None:
        """Write a block of rows at the end of the file."""
        self.write_at(self._rows, rows)

    def write_at(self, start: int, rows: np.ndarray) -> None:
        """Write a block of rows at row offset ``start`` (may extend)."""
        block = self._coerce(rows)
        handle = self._handle()
        handle.seek(start * self._row_bytes)
        handle.write(block.tobytes())
        self._rows = max(self._rows, start + len(block))

    def read(self, start: int, stop: int) -> np.ndarray:
        """Rows ``[start, stop)`` as a ``(stop - start, width)`` array."""
        if not 0 <= start <= stop <= self._rows:
            raise ValueError(
                f"row range [{start}, {stop}) outside [0, {self._rows}] "
                f"in {self.path!r}"
            )
        count = stop - start
        handle = self._handle()
        handle.seek(start * self._row_bytes)
        data = handle.read(count * self._row_bytes)
        if len(data) != count * self._row_bytes:
            raise ValueError(
                f"short read in {self.path!r}: wanted {count} rows at "
                f"{start}, file delivered {len(data)} bytes"
            )
        return np.frombuffer(data, dtype=np.float64).reshape(count, self.width)

    def iter_blocks(
        self, start: int, stop: int, block_rows: int
    ) -> Iterator[np.ndarray]:
        """Yield rows ``[start, stop)`` in blocks of ``block_rows``."""
        if block_rows < 1:
            raise ValueError(f"block_rows must be >= 1, got {block_rows}")
        offset = start
        while offset < stop:
            end = min(offset + block_rows, stop)
            yield self.read(offset, end)
            offset = end

    def close(self) -> None:
        """Close the file handle (idempotent); the file stays on disk."""
        if self._file is not None:
            self._file.close()
            self._file = None

    def delete(self) -> None:
        """Close the handle and remove the file (idempotent)."""
        self.close()
        Path(self.path).unlink(missing_ok=True)

    def __enter__(self) -> "SpillFile":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SpillFile({self.path!r}, width={self.width}, rows={self._rows})"


def _merge_key(item: Tuple[float, np.ndarray]) -> float:
    return item[0]


def _run_rows(
    run: SpillFile, key_col: int, block_rows: int
) -> Iterator[Tuple[float, np.ndarray]]:
    """Yield a sorted run's rows as ``(key, row)`` pairs, block-buffered."""
    for block in run.iter_blocks(0, run.rows, block_rows):
        for row in block:
            yield (float(row[key_col]), row)


def _merge_runs(
    runs: List[SpillFile],
    emit: Callable[[np.ndarray], None],
    key_col: int,
    chunk_rows: int,
) -> None:
    """K-way merge sorted runs into ``emit`` callbacks of row blocks.

    ``heapq.merge`` breaks key ties in favour of earlier iterables, and
    runs are passed in chunk order, so the merged order equals one
    global stable sort of the original segment.
    """
    if not runs:
        return
    width = runs[0].width
    block_rows = max(1, chunk_rows // (len(runs) + 1))
    buffer_rows = max(1, min(8192, chunk_rows))
    buffer = np.empty((buffer_rows, width), dtype=np.float64)
    fill = 0
    streams = [_run_rows(run, key_col, block_rows) for run in runs]
    for _key, row in heapq.merge(*streams, key=_merge_key):
        buffer[fill] = row
        fill += 1
        if fill == buffer_rows:
            emit(buffer[:fill])
            fill = 0
    if fill:
        emit(buffer[:fill])


def sort_segment(
    src: SpillFile,
    dst: SpillFile,
    start: int,
    stop: int,
    key_col: int,
    *,
    chunk_rows: int,
    run_dir: Union[str, os.PathLike],
    fanin: int = DEFAULT_MERGE_FANIN,
) -> None:
    """Stable-sort rows ``[start, stop)`` of ``src`` into ``dst`` by one
    column, holding at most ``O(chunk_rows)`` rows in memory.

    Segments that fit a single chunk sort entirely in RAM; larger
    segments spill sorted runs into ``run_dir`` and k-way merge them
    (cascading when more than ``fanin`` runs exist).  Every run file is
    deleted before return on success *and* failure paths.
    """
    if fanin < 2:
        raise ValueError(f"fanin must be >= 2, got {fanin}")
    count = stop - start
    if count <= 0:
        return
    if count <= chunk_rows:
        block = src.read(start, stop)
        order = np.argsort(block[:, key_col], kind="stable")
        dst.write_at(start, block[order])
        return
    created: List[SpillFile] = []
    try:
        runs: List[SpillFile] = []
        serial = 0
        for offset in range(start, stop, chunk_rows):
            end = min(offset + chunk_rows, stop)
            block = src.read(offset, end)
            order = np.argsort(block[:, key_col], kind="stable")
            run = SpillFile(
                os.path.join(os.fspath(run_dir), f"run-{start}-{serial}.spill"),
                src.width,
            )
            created.append(run)
            serial += 1
            runs.append(run)
            run.append(block[order])
        while len(runs) > fanin:
            merged = SpillFile(
                os.path.join(os.fspath(run_dir), f"run-{start}-{serial}.spill"),
                src.width,
            )
            created.append(merged)
            serial += 1
            _merge_runs(runs[:fanin], merged.append, key_col, chunk_rows)
            runs = [merged] + runs[fanin:]
        position = start

        def _to_dst(block: np.ndarray) -> None:
            nonlocal position
            dst.write_at(position, block)
            position += len(block)

        _merge_runs(runs, _to_dst, key_col, chunk_rows)
    finally:
        for run in created:
            run.delete()
