"""Fixed-slot page files: the on-disk format of the out-of-core store.

One file per simulated disk.  The layout is deliberately dumb — a small
fixed header, a slot-count table, then ``num_slots`` fixed-size slots —
so a reader can memory-map the file and serve any page with two
``np.frombuffer`` views and zero parsing:

.. code-block:: text

    offset 0    header (64 bytes, little-endian)
                  magic           8s   b"REPROPGF"
                  format_version  u32  PAGEFILE_FORMAT_VERSION
                  disk_id         u32  which simulated disk this file is
                  page_bytes      u64  logical page size of the store
                  slot_bytes      u64  bytes reserved per slot
                  num_slots       u64  number of page slots
                  dimension       u32  point dimensionality d
                  entry_bytes     u32  8 + 8 * d (sanity check)
                  (16 reserved zero bytes)
    offset 64   counts table: num_slots * u32 entries per slot
    data start  slot 0, slot 1, ... at ``slot_bytes`` stride
                (data start is the counts-table end rounded up to 8)

A slot holds one data page's payload: ``n`` object ids as little-endian
``int64`` followed by ``n`` points as row-major ``float64`` — exactly the
arrays the in-memory engines score, so a round trip through the file is
bit-for-bit lossless.  Slot tail bytes beyond the payload are zero.

Oversized payloads **raise** :class:`SlotOverflowError` at write time —
a page is never silently truncated.  Readers validate the magic, the
format version, and that the file length matches the header exactly;
a partially written (crashed/truncated) file fails fast with
:class:`PageFormatError` instead of returning garbage pages.  See
``docs/storage.md`` for the full contract.
"""

from __future__ import annotations

import mmap
import os
import struct
from typing import IO, Optional, Tuple, Union

import numpy as np

from repro.index.node import DEFAULT_PAGE_BYTES

__all__ = [
    "PAGEFILE_MAGIC",
    "PAGEFILE_FORMAT_VERSION",
    "HEADER_BYTES",
    "PageFormatError",
    "SlotOverflowError",
    "payload_bytes",
    "PageFileWriter",
    "PageFile",
]

#: First eight bytes of every page file.
PAGEFILE_MAGIC = b"REPROPGF"

#: On-disk format revision; bump on any incompatible layout change.
PAGEFILE_FORMAT_VERSION = 1

#: Fixed header size in bytes.
HEADER_BYTES = 64

#: ``<`` disables alignment so the struct is exactly 64 bytes everywhere.
_HEADER = struct.Struct("<8sIIQQQII16x")

_OID_BYTES = 8
_COORD_BYTES = 8


class PageFormatError(ValueError):
    """A page file is missing, corrupt, truncated, or from another
    format version."""


class SlotOverflowError(PageFormatError):
    """A page payload does not fit its fixed-size slot (never truncate)."""


def payload_bytes(num_entries: int, dimension: int) -> int:
    """Bytes needed to store ``num_entries`` (oid, point) pairs."""
    return num_entries * (_OID_BYTES + _COORD_BYTES * dimension)


def _counts_end(num_slots: int) -> int:
    return HEADER_BYTES + 4 * num_slots


def _data_start(num_slots: int) -> int:
    """First slot offset: the counts table end rounded up to 8 bytes."""
    end = _counts_end(num_slots)
    return (end + 7) & ~7


class PageFileWriter:
    """Sequential creator of one disk's page file.

    Pre-sizes the file on open (unwritten slots stay zero), accepts slot
    payloads in any order via :meth:`write_slot`, and writes the
    slot-count table on :meth:`close` — so a crash mid-write leaves a
    file whose length is right but whose counts table is all zeros,
    which the reader surfaces as empty pages rather than garbage.
    """

    def __init__(
        self,
        path: Union[str, os.PathLike],
        *,
        disk_id: int,
        num_slots: int,
        slot_bytes: int,
        dimension: int,
        page_bytes: int = DEFAULT_PAGE_BYTES,
    ):
        if num_slots < 0:
            raise ValueError(f"num_slots must be >= 0, got {num_slots}")
        if slot_bytes < 1:
            raise ValueError(f"slot_bytes must be >= 1, got {slot_bytes}")
        if dimension < 1:
            raise ValueError(f"dimension must be >= 1, got {dimension}")
        self.path = os.fspath(path)
        self.disk_id = disk_id
        self.num_slots = num_slots
        self.slot_bytes = slot_bytes
        self.dimension = dimension
        self.page_bytes = page_bytes
        self._counts = np.zeros(num_slots, dtype=np.uint32)
        self._start = _data_start(num_slots)
        self._file: Optional[IO[bytes]] = open(self.path, "wb")
        self._file.write(
            _HEADER.pack(
                PAGEFILE_MAGIC,
                PAGEFILE_FORMAT_VERSION,
                disk_id,
                page_bytes,
                slot_bytes,
                num_slots,
                dimension,
                _OID_BYTES + _COORD_BYTES * dimension,
            )
        )
        self._file.truncate(self._start + num_slots * slot_bytes)

    def write_slot(
        self, slot: int, oids: np.ndarray, points: np.ndarray
    ) -> None:
        """Store one page payload; raises if it exceeds the slot size."""
        if self._file is None:
            raise PageFormatError(f"page file {self.path!r} already closed")
        if not 0 <= slot < self.num_slots:
            raise ValueError(
                f"slot {slot} outside [0, {self.num_slots}) in {self.path!r}"
            )
        oids = np.ascontiguousarray(oids, dtype=np.int64)
        points = np.ascontiguousarray(points, dtype=np.float64)
        if oids.ndim != 1 or points.shape != (len(oids), self.dimension):
            raise ValueError(
                f"payload must be ({len(oids)},) oids and "
                f"({len(oids)}, {self.dimension}) points, got points shape "
                f"{points.shape}"
            )
        need = payload_bytes(len(oids), self.dimension)
        if need > self.slot_bytes:
            raise SlotOverflowError(
                f"page payload of {len(oids)} entries needs {need} bytes "
                f"but slots in {self.path!r} hold {self.slot_bytes}; "
                f"rebuild the store with a larger slot_bytes"
            )
        self._file.seek(self._start + slot * self.slot_bytes)
        self._file.write(oids.tobytes())
        self._file.write(points.tobytes())
        self._counts[slot] = len(oids)

    def close(self) -> None:
        """Flush the slot-count table and close the file."""
        if self._file is None:
            return
        self._file.seek(HEADER_BYTES)
        self._file.write(self._counts.tobytes())
        self._file.close()
        self._file = None

    def __enter__(self) -> "PageFileWriter":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class PageFile:
    """Read-only memory-mapped view of one disk's page file.

    Multiple ``PageFile`` handles — in the same process or in per-disk
    worker processes — may map the same file concurrently; the mapping
    is read-only and the file is immutable once written.
    """

    def __init__(self, path: Union[str, os.PathLike]):
        self.path = os.fspath(path)
        try:
            self._file: Optional[IO[bytes]] = open(self.path, "rb")
        except FileNotFoundError as error:
            raise PageFormatError(
                f"page file {self.path!r} does not exist"
            ) from error
        size = os.fstat(self._file.fileno()).st_size
        if size < HEADER_BYTES:
            self._file.close()
            raise PageFormatError(
                f"{self.path!r} is {size} bytes — too short for a page "
                f"file header ({HEADER_BYTES} bytes); truncated?"
            )
        header = self._file.read(HEADER_BYTES)
        (
            magic,
            version,
            self.disk_id,
            self.page_bytes,
            self.slot_bytes,
            self.num_slots,
            self.dimension,
            entry_bytes,
        ) = _HEADER.unpack(header)
        if magic != PAGEFILE_MAGIC:
            self._file.close()
            raise PageFormatError(
                f"{self.path!r} is not a repro page file "
                f"(magic {magic!r}, expected {PAGEFILE_MAGIC!r})"
            )
        if version != PAGEFILE_FORMAT_VERSION:
            self._file.close()
            raise PageFormatError(
                f"{self.path!r} uses page-file format version {version}; "
                f"this build reads version {PAGEFILE_FORMAT_VERSION} — "
                f"rebuild the store with the current code"
            )
        if entry_bytes != _OID_BYTES + _COORD_BYTES * self.dimension:
            self._file.close()
            raise PageFormatError(
                f"{self.path!r} header is inconsistent: entry_bytes "
                f"{entry_bytes} != 8 + 8 * dimension ({self.dimension})"
            )
        self._start = _data_start(self.num_slots)
        expected = self._start + self.num_slots * self.slot_bytes
        if size != expected:
            self._file.close()
            raise PageFormatError(
                f"{self.path!r} is {size} bytes but the header promises "
                f"{expected} ({self.num_slots} slots x {self.slot_bytes} "
                f"bytes); the file is truncated or corrupt"
            )
        self._mmap: Optional[mmap.mmap] = mmap.mmap(
            self._file.fileno(), 0, access=mmap.ACCESS_READ
        )
        self._counts = np.frombuffer(
            self._mmap, dtype=np.uint32, count=self.num_slots,
            offset=HEADER_BYTES,
        )
        limit = self.slot_bytes // (_OID_BYTES + _COORD_BYTES * self.dimension)
        if self.num_slots and int(self._counts.max(initial=0)) > limit:
            self.close()
            raise PageFormatError(
                f"{self.path!r} count table claims a slot with "
                f"more entries than fit {self.slot_bytes} slot bytes"
            )

    def entry_count(self, slot: int) -> int:
        """Entries stored in a slot — read from the table, no page touch."""
        if self._mmap is None:
            raise PageFormatError(f"page file {self.path!r} already closed")
        return int(self._counts[slot])

    def read_slot(self, slot: int) -> Tuple[np.ndarray, np.ndarray]:
        """One page payload as ``(points, oids)`` arrays (owned copies).

        The copy decouples returned results from the mapping's lifetime
        (a neighbor list must survive :meth:`close`); the mmap page
        fault — the simulated disk read — happens here either way.
        """
        if self._mmap is None:
            raise PageFormatError(f"page file {self.path!r} already closed")
        if not 0 <= slot < self.num_slots:
            raise ValueError(
                f"slot {slot} outside [0, {self.num_slots}) in {self.path!r}"
            )
        count = int(self._counts[slot])
        offset = self._start + slot * self.slot_bytes
        oids = np.frombuffer(
            self._mmap, dtype=np.int64, count=count, offset=offset
        ).copy()
        points = np.frombuffer(
            self._mmap,
            dtype=np.float64,
            count=count * self.dimension,
            offset=offset + _OID_BYTES * count,
        ).reshape(count, self.dimension).copy()
        return points, oids

    def close(self) -> None:
        """Drop the mapping and close the file handle."""
        self._counts = np.zeros(0, dtype=np.uint32)
        if self._mmap is not None:
            self._mmap.close()
            self._mmap = None
        if self._file is not None:
            self._file.close()
            self._file = None

    def __enter__(self) -> "PageFile":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PageFile({self.path!r}, disk={self.disk_id}, "
            f"slots={self.num_slots}, slot_bytes={self.slot_bytes})"
        )
