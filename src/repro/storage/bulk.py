"""Direct-to-disk STR bulk loading: build an MmapStore without
materializing per-point Python objects.

:func:`repro.index.bulk.bulk_load` creates one ``LeafEntry`` object per
point — fine for the paper's 10^4–10^5 points, prohibitive for N in the
tens of millions.  :func:`bulk_load_mmap` performs the *same* STR
packing arithmetic on raw index arrays, streams each leaf tile straight
into its disk's page file, and keeps only the directory (inner nodes +
leaf MBRs) in RAM — memory is O(points array + directory), and the
payload never exists as Python objects.

Equivalence: the leaf tiles, leaf MBRs, directory grouping, and the
declusterer's page-to-disk assignment are computed exactly as the
in-memory path (``bulk_load`` + ``PagedStore`` + ``save_mmap_store``)
computes them, so the resulting store answers queries bit-for-bit
identically (the test suite asserts this on shared seeds).
"""

from __future__ import annotations

import os
from typing import Callable, List, Optional, Sequence, Tuple, Type, Union

import numpy as np

from repro.core.declustering import Declusterer
from repro.index.bulk import str_chunks
from repro.index.mbr import MBR
from repro.index.node import DEFAULT_PAGE_BYTES, Node
from repro.index.rstar import RStarTree
from repro.index.xtree import XTree
from repro.parallel.cache import CacheConfig
from repro.persistence import _STORE_FORMAT_VERSION, _encode_cache, _tree_header
from repro.storage.mmap_store import MmapStore, _write_store

__all__ = ["bulk_load_mmap"]


def _skeleton_tree(
    points: np.ndarray,
    tree_cls: Type[RStarTree],
    fill: float,
    page_bytes: int,
) -> Tuple[RStarTree, List[Node], List[np.ndarray]]:
    """STR-pack ``points`` into a tree of *empty* leaves.

    Leaves carry their MBR (set from the tile's min/max — the same
    values ``MBR.from_points`` yields) and no entries; the directory is
    grown bottom-up from leaf centers exactly as ``bulk_load`` does.
    Returns the tree, its leaves in pre-order, and each pre-order
    leaf's point-index tile.
    """
    num_points, dimension = points.shape
    tree = tree_cls(dimension, page_bytes=page_bytes)
    if num_points == 0:
        return tree, [], []
    leaf_target = max(4, int(tree.leaf_cap * fill))
    tiles = str_chunks(points, leaf_target)
    level: List[Node] = []
    tile_of = {}
    for index, tile in enumerate(tiles):
        node = Node(is_leaf=True)
        node.mbr = MBR(
            points[tile].min(axis=0), points[tile].max(axis=0)
        )
        tile_of[id(node)] = index
        level.append(node)
    dir_target = max(4, int(tree.dir_cap * fill))
    while len(level) > 1:
        centers = np.vstack([node.mbr.center for node in level])
        groups = str_chunks(centers, dir_target)
        level = [
            Node(is_leaf=False, entries=[level[i] for i in group])
            for group in groups
        ]
    tree.root = level[0]
    tree.size = num_points
    leaves = list(tree.leaves())
    return tree, leaves, [tiles[tile_of[id(leaf)]] for leaf in leaves]


def bulk_load_mmap(
    points: np.ndarray,
    declusterer: Union[Declusterer, Callable],
    directory: Union[str, os.PathLike],
    *,
    num_disks: Optional[int] = None,
    oids: Optional[Sequence[int]] = None,
    tree_cls: Type[RStarTree] = XTree,
    page_bytes: int = DEFAULT_PAGE_BYTES,
    fill: float = 0.85,
    cache_config: Optional[CacheConfig] = None,
    slot_bytes: Optional[int] = None,
) -> MmapStore:
    """STR bulk-load ``points`` straight into an out-of-core store.

    Parameters mirror ``bulk_load`` + ``PagedStore``: ``declusterer``
    assigns pages to disks by leaf MBR center (pass ``num_disks`` when
    it is a raw callable), ``cache_config`` is persisted as the store's
    default pool, and the result is an opened :class:`MmapStore` over
    ``directory``.
    """
    points = np.ascontiguousarray(points, dtype=float)
    if points.ndim != 2:
        raise ValueError(f"points must be (N, d), got shape {points.shape}")
    if not 0.8 <= fill <= 1.0:
        raise ValueError(f"fill must be in [0.8, 1.0], got {fill}")
    num_points = len(points)
    if oids is None:
        oids = np.arange(num_points)
    oids = np.asarray(oids, dtype=np.int64)
    if oids.shape != (num_points,):
        raise ValueError(
            f"oids must have shape ({num_points},), got {oids.shape}"
        )
    if isinstance(declusterer, Declusterer):
        num_disks = declusterer.num_disks
    elif num_disks is None:
        raise ValueError("num_disks is required for a callable assignment")

    tree, leaves, tiles = _skeleton_tree(points, tree_cls, fill, page_bytes)

    if leaves:
        centers = np.vstack([leaf.mbr.center for leaf in leaves])
        if isinstance(declusterer, Declusterer):
            page_disks = np.asarray(declusterer.assign(centers), dtype=np.int64)
        else:
            page_disks = np.asarray(declusterer(centers), dtype=np.int64)
        if len(page_disks) != len(leaves):
            raise RuntimeError("page assignment has wrong length")
        if page_disks.min() < 0 or page_disks.max() >= num_disks:
            raise RuntimeError("page assignment outside [0, num_disks)")
    else:
        page_disks = np.zeros(0, dtype=np.int64)

    header = _tree_header(tree)
    header["store_format_version"] = _STORE_FORMAT_VERSION
    header["num_disks"] = num_disks
    header["scheme"] = getattr(declusterer, "name", "custom")
    header["cache"] = _encode_cache(cache_config)

    payloads = [(points[tile], oids[tile]) for tile in tiles]
    _write_store(
        directory,
        tree,
        header,
        leaves,
        payloads,
        page_disks,
        int(num_disks),
        page_bytes,
        slot_bytes,
    )
    return MmapStore(directory)
