"""Direct-to-disk STR bulk loading: build an MmapStore without
materializing per-point Python objects.

:func:`repro.index.bulk.bulk_load` creates one ``LeafEntry`` object per
point — fine for the paper's 10^4–10^5 points, prohibitive for N in the
tens of millions.  :func:`bulk_load_mmap` performs the *same* STR
packing arithmetic on raw index arrays, streams each leaf tile straight
into its disk's page file, and keeps only the directory (inner nodes +
leaf MBRs) in RAM — memory is O(points array + directory), and the
payload never exists as Python objects.

Equivalence: the leaf tiles, leaf MBRs, directory grouping, and the
declusterer's page-to-disk assignment are computed exactly as the
in-memory path (``bulk_load`` + ``PagedStore`` + ``save_mmap_store``)
computes them, so the resulting store answers queries bit-for-bit
identically (the test suite asserts this on shared seeds).
"""

from __future__ import annotations

import itertools
import math
import os
import shutil
from pathlib import Path
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Type,
    Union,
)

import numpy as np

from repro.core.declustering import Declusterer
from repro.index.bulk import str_chunks
from repro.index.mbr import MBR
from repro.index.node import DEFAULT_PAGE_BYTES, Node
from repro.index.rstar import RStarTree
from repro.index.xtree import XTree
from repro.parallel.cache import CacheConfig
from repro.persistence import _STORE_FORMAT_VERSION, _encode_cache, _tree_header
from repro.storage.mmap_store import MmapStore, _write_store
from repro.storage.spill import SpillFile, sort_segment

__all__ = [
    "bulk_load_mmap",
    "stream_bulk_load_mmap",
    "DEFAULT_MAX_RAM_BYTES",
    "SPILL_DIR_NAME",
]

#: Default RAM budget for :func:`stream_bulk_load_mmap`'s sort chunks.
DEFAULT_MAX_RAM_BYTES = 256 * 1024 * 1024

#: Spill sub-directory (ping-pong record files + sort runs) created
#: inside the store directory during a streaming build and removed —
#: success or failure — before :func:`stream_bulk_load_mmap` returns.
SPILL_DIR_NAME = ".spill"


def _skeleton_tree(
    points: np.ndarray,
    tree_cls: Type[RStarTree],
    fill: float,
    page_bytes: int,
) -> Tuple[RStarTree, List[Node], List[np.ndarray]]:
    """STR-pack ``points`` into a tree of *empty* leaves.

    Leaves carry their MBR (set from the tile's min/max — the same
    values ``MBR.from_points`` yields) and no entries; the directory is
    grown bottom-up from leaf centers exactly as ``bulk_load`` does.
    Returns the tree, its leaves in pre-order, and each pre-order
    leaf's point-index tile.
    """
    num_points, dimension = points.shape
    tree = tree_cls(dimension, page_bytes=page_bytes)
    if num_points == 0:
        return tree, [], []
    leaf_target = max(4, int(tree.leaf_cap * fill))
    tiles = str_chunks(points, leaf_target)
    level: List[Node] = []
    tile_of = {}
    for index, tile in enumerate(tiles):
        node = Node(is_leaf=True)
        node.mbr = MBR(
            points[tile].min(axis=0), points[tile].max(axis=0)
        )
        tile_of[id(node)] = index
        level.append(node)
    dir_target = max(4, int(tree.dir_cap * fill))
    while len(level) > 1:
        centers = np.vstack([node.mbr.center for node in level])
        groups = str_chunks(centers, dir_target)
        level = [
            Node(is_leaf=False, entries=[level[i] for i in group])
            for group in groups
        ]
    tree.root = level[0]
    tree.size = num_points
    leaves = list(tree.leaves())
    return tree, leaves, [tiles[tile_of[id(leaf)]] for leaf in leaves]


def bulk_load_mmap(
    points: np.ndarray,
    declusterer: Union[Declusterer, Callable],
    directory: Union[str, os.PathLike],
    *,
    num_disks: Optional[int] = None,
    oids: Optional[Sequence[int]] = None,
    tree_cls: Type[RStarTree] = XTree,
    page_bytes: int = DEFAULT_PAGE_BYTES,
    fill: float = 0.85,
    cache_config: Optional[CacheConfig] = None,
    slot_bytes: Optional[int] = None,
) -> MmapStore:
    """STR bulk-load ``points`` straight into an out-of-core store.

    Parameters mirror ``bulk_load`` + ``PagedStore``: ``declusterer``
    assigns pages to disks by leaf MBR center (pass ``num_disks`` when
    it is a raw callable), ``cache_config`` is persisted as the store's
    default pool, and the result is an opened :class:`MmapStore` over
    ``directory``.
    """
    points = np.ascontiguousarray(points, dtype=float)
    if points.ndim != 2:
        raise ValueError(f"points must be (N, d), got shape {points.shape}")
    if not 0.8 <= fill <= 1.0:
        raise ValueError(f"fill must be in [0.8, 1.0], got {fill}")
    num_points = len(points)
    if oids is None:
        oids = np.arange(num_points)
    oids = np.asarray(oids, dtype=np.int64)
    if oids.shape != (num_points,):
        raise ValueError(
            f"oids must have shape ({num_points},), got {oids.shape}"
        )
    if isinstance(declusterer, Declusterer):
        num_disks = declusterer.num_disks
    elif num_disks is None:
        raise ValueError("num_disks is required for a callable assignment")

    tree, leaves, tiles = _skeleton_tree(points, tree_cls, fill, page_bytes)

    if leaves:
        centers = np.vstack([leaf.mbr.center for leaf in leaves])
        if isinstance(declusterer, Declusterer):
            page_disks = np.asarray(declusterer.assign(centers), dtype=np.int64)
        else:
            page_disks = np.asarray(declusterer(centers), dtype=np.int64)
        if len(page_disks) != len(leaves):
            raise RuntimeError("page assignment has wrong length")
        if page_disks.min() < 0 or page_disks.max() >= num_disks:
            raise RuntimeError("page assignment outside [0, num_disks)")
    else:
        page_disks = np.zeros(0, dtype=np.int64)

    header = _tree_header(tree)
    header["store_format_version"] = _STORE_FORMAT_VERSION
    header["num_disks"] = num_disks
    header["scheme"] = getattr(declusterer, "name", "custom")
    header["cache"] = _encode_cache(cache_config)

    payloads = [(points[tile], oids[tile]) for tile in tiles]
    _write_store(
        directory,
        tree,
        header,
        leaves,
        payloads,
        page_disks,
        int(num_disks),
        page_bytes,
        slot_bytes,
    )
    return MmapStore(directory)


# --------------------------------------------------------------- streaming

#: Anything :func:`stream_bulk_load_mmap` accepts as its point source:
#: an in-RAM (or memmapped) ``(N, d)`` array, a path to a C-order 2-D
#: ``.npy`` file (read with buffered I/O, never mapped), or an iterable
#: of ``(m, d)`` row chunks.
PointSource = Union[np.ndarray, str, os.PathLike, Iterable[object]]

_RECORD_A = "records-a.f64"
_RECORD_B = "records-b.f64"


def _resolve_chunk_rows(
    dimension: int, max_ram_bytes: int, chunk_rows: Optional[int]
) -> int:
    """Rows per in-RAM sort chunk under the ``max_ram_bytes`` budget.

    A chunk of ``r`` rows costs ``r * 8 * (d + 1)`` bytes and the sort
    holds roughly four copies' worth of transient arrays (the chunk,
    its stable argsort, the permuted output, and merge buffers), so the
    budget is divided by four record widths.
    """
    if chunk_rows is not None:
        if chunk_rows < 1:
            raise ValueError(f"chunk_rows must be >= 1, got {chunk_rows}")
        return int(chunk_rows)
    if max_ram_bytes < 1:
        raise ValueError(f"max_ram_bytes must be >= 1, got {max_ram_bytes}")
    row_bytes = 8 * (dimension + 1)
    return max(1, int(max_ram_bytes) // (row_bytes * 4))


def _check_dim(actual: int, wanted: Optional[int]) -> int:
    if actual < 1:
        raise ValueError(f"point dimension must be >= 1, got {actual}")
    if wanted is not None and int(wanted) != actual:
        raise ValueError(
            f"source has dimension {actual}, but dimension={wanted} was given"
        )
    return actual


def _coerce_chunk(item: object) -> np.ndarray:
    """One iterable item as a C-contiguous float64 ``(m, d)`` block."""
    block = np.ascontiguousarray(item, dtype=np.float64)
    if block.ndim == 1:
        block = block.reshape(1, -1)
    if block.ndim != 2:
        raise ValueError(
            f"point chunks must be (m, d), got shape {block.shape}"
        )
    return block


def _array_chunks(array: np.ndarray, rows: int) -> Iterator[np.ndarray]:
    """Row chunks of an in-RAM (or memmapped) point array."""
    for offset in range(0, len(array), rows):
        yield np.ascontiguousarray(
            array[offset : offset + rows], dtype=np.float64
        )


def _iterable_chunks(items: Iterable[object], rows: int) -> Iterator[np.ndarray]:
    """Caller-supplied chunks, re-split to at most ``rows`` rows each."""
    for item in items:
        block = _coerce_chunk(item)
        for offset in range(0, len(block), rows):
            yield block[offset : offset + rows]


def _npy_meta(
    path: Union[str, os.PathLike],
) -> Tuple[Tuple[int, int], np.dtype, int]:
    """Shape, dtype, and data offset of a C-order 2-D ``.npy`` file."""
    with open(path, "rb") as handle:
        version = np.lib.format.read_magic(handle)
        if version == (1, 0):
            shape, fortran, dtype = np.lib.format.read_array_header_1_0(handle)
        elif version == (2, 0):
            shape, fortran, dtype = np.lib.format.read_array_header_2_0(handle)
        else:
            raise ValueError(
                f"unsupported .npy format version {version} in "
                f"{os.fspath(path)!r}"
            )
        offset = handle.tell()
    if len(shape) != 2:
        raise ValueError(f"points must be (N, d), got shape {shape}")
    if fortran:
        raise ValueError(
            f"{os.fspath(path)!r} is Fortran-ordered; the streaming "
            f"loader reads C-order row chunks"
        )
    if dtype.hasobject:
        raise ValueError(f"{os.fspath(path)!r} holds objects, not numbers")
    return (int(shape[0]), int(shape[1])), dtype, offset


def _npy_chunks(
    path: Union[str, os.PathLike],
    shape: Tuple[int, int],
    dtype: np.dtype,
    offset: int,
    rows: int,
) -> Iterator[np.ndarray]:
    """Stream a ``.npy`` file's rows with buffered reads (never mmap)."""
    total, dimension = shape
    row_bytes = dimension * dtype.itemsize
    with open(path, "rb") as handle:
        handle.seek(offset)
        done = 0
        while done < total:
            take = min(rows, total - done)
            data = handle.read(take * row_bytes)
            if len(data) != take * row_bytes:
                raise ValueError(
                    f"{os.fspath(path)!r} is truncated: row {done} of "
                    f"{total} ends mid-file"
                )
            block = np.frombuffer(data, dtype=dtype).reshape(take, dimension)
            yield np.ascontiguousarray(block, dtype=np.float64)
            done += take


def _ingest(
    source: PointSource,
    spill_dir: Path,
    max_ram_bytes: int,
    chunk_rows: Optional[int],
    dimension: Optional[int],
) -> Tuple[SpillFile, SpillFile, int, int, int]:
    """Stream ``source`` into the primary record file.

    Returns ``(records, alternate, count, dimension, chunk_rows)`` —
    the filled ping-pong record file A, the empty file B, the point
    count, the resolved dimension, and the resolved sort-chunk size.
    Records are rows of ``d + 1`` float64 values: the coordinates
    followed by the point's original position (later the default oid).
    """
    chunks: Iterator[np.ndarray]
    if isinstance(source, np.ndarray):
        if source.ndim != 2:
            raise ValueError(
                f"points must be (N, d), got shape {source.shape}"
            )
        dim = _check_dim(int(source.shape[1]), dimension)
        rows = _resolve_chunk_rows(dim, max_ram_bytes, chunk_rows)
        chunks = _array_chunks(source, rows)
    elif isinstance(source, (str, os.PathLike)):
        shape, dtype, offset = _npy_meta(source)
        dim = _check_dim(shape[1], dimension)
        rows = _resolve_chunk_rows(dim, max_ram_bytes, chunk_rows)
        chunks = _npy_chunks(source, shape, dtype, offset, rows)
    else:
        iterator = iter(source)
        try:
            first = next(iterator)
        except StopIteration:
            if dimension is None:
                raise ValueError(
                    "cannot infer the point dimension of an empty "
                    "source; pass dimension="
                ) from None
            dim = _check_dim(int(dimension), None)
            rows = _resolve_chunk_rows(dim, max_ram_bytes, chunk_rows)
            chunks = iter(())
        else:
            head = _coerce_chunk(first)
            dim = _check_dim(int(head.shape[1]), dimension)
            rows = _resolve_chunk_rows(dim, max_ram_bytes, chunk_rows)
            chunks = _iterable_chunks(
                itertools.chain([head], iterator), rows
            )

    records = _record_file(spill_dir, _RECORD_A, dim + 1)
    alternate: Optional[SpillFile] = None
    try:
        count = 0
        for chunk in chunks:
            if chunk.shape[1] != dim:
                raise ValueError(
                    f"point chunk has dimension {chunk.shape[1]}, "
                    f"expected {dim}"
                )
            block = np.empty((len(chunk), dim + 1), dtype=np.float64)
            block[:, :dim] = chunk
            block[:, dim] = np.arange(
                count, count + len(chunk), dtype=np.float64
            )
            records.append(block)
            count += len(chunk)
        alternate = _record_file(spill_dir, _RECORD_B, dim + 1)
        return records, alternate, count, dim, rows
    finally:
        # An ingest that failed before file B existed is the only path
        # that leaves file A unowned by the caller.
        if alternate is None:
            records.delete()


def _record_file(spill_dir: str, name: str, width: int) -> SpillFile:
    """Open one ping-pong record file under the spill directory.

    The caller owns the handle: :func:`_ingest` deletes file A when the
    ingest fails before file B exists, and
    :func:`stream_bulk_load_mmap` deletes both in its ``finally``.
    """
    return SpillFile(os.path.join(spill_dir, name), width)


def _split_bounds(start: int, stop: int, parts: int) -> List[Tuple[int, int]]:
    """Row boundaries matching ``np.array_split`` over ``stop - start``."""
    each, extras = divmod(stop - start, parts)
    bounds: List[Tuple[int, int]] = []
    offset = start
    for index in range(parts):
        size = each + 1 if index < extras else each
        bounds.append((offset, offset + size))
        offset += size
    return bounds


def _stream_tiles(
    files: Tuple[SpillFile, SpillFile],
    count: int,
    dimension: int,
    capacity: int,
    chunk_rows: int,
    run_dir: Path,
) -> Tuple[List[Tuple[int, int, int]], List[np.ndarray], List[np.ndarray]]:
    """Run the STR recursion out-of-core over the record files.

    This is :func:`repro.index.bulk.str_chunks` with the stable argsort
    replaced by :func:`repro.storage.spill.sort_segment` and the index
    arrays replaced by ``(start, stop, file)`` row ranges — an explicit
    depth-first stack preserves the recursion's tile emission order.
    Returns the tiles plus each tile's MBR low/high corner.
    """
    tiles: List[Tuple[int, int, int]] = []
    lows: List[np.ndarray] = []
    highs: List[np.ndarray] = []
    stack: List[Tuple[int, int, int, int]] = [(0, count, 0, 0)]
    while stack:
        start, stop, dim, src = stack.pop()
        segment = stop - start
        if segment <= capacity:
            block = files[src].read(start, stop)
            points = block[:, :dimension]
            tiles.append((start, stop, src))
            lows.append(points.min(axis=0))
            highs.append(points.max(axis=0))
            continue
        pages = math.ceil(segment / capacity)
        dst = 1 - src
        sort_segment(
            files[src],
            files[dst],
            start,
            stop,
            dim,
            chunk_rows=chunk_rows,
            run_dir=run_dir,
        )
        if dim >= dimension - 1:
            # Last dimension: slice into near-equal runs of <= capacity.
            children = [
                (low, high, dim, dst)
                for low, high in _split_bounds(start, stop, pages)
            ]
        else:
            dims_left = dimension - dim
            slabs = math.ceil(pages ** (1.0 / dims_left))
            children = [
                (low, high, dim + 1, dst)
                for low, high in _split_bounds(start, stop, slabs)
                if high > low
            ]
        stack.extend(reversed(children))
    return tiles, lows, highs


def _directory_from_tiles(
    tree: RStarTree,
    lows: List[np.ndarray],
    highs: List[np.ndarray],
    fill: float,
    count: int,
) -> Tuple[List[Node], List[int]]:
    """Grow the directory bottom-up from streamed tile MBRs.

    Mirrors ``_skeleton_tree``'s directory phase; returns the tree's
    leaves in pre-order plus each leaf's tile index.
    """
    level: List[Node] = []
    tile_of: Dict[int, int] = {}
    for index in range(len(lows)):
        node = Node(is_leaf=True)
        node.mbr = MBR(lows[index], highs[index])
        tile_of[id(node)] = index
        level.append(node)
    dir_target = max(4, int(tree.dir_cap * fill))
    while len(level) > 1:
        centers = np.vstack([node.mbr.center for node in level])
        groups = str_chunks(centers, dir_target)
        level = [
            Node(is_leaf=False, entries=[level[i] for i in group])
            for group in groups
        ]
    tree.root = level[0]
    tree.size = count
    leaves = list(tree.leaves())
    return leaves, [tile_of[id(leaf)] for leaf in leaves]


class _SpillPayloads:
    """Lazy per-leaf ``(points, oids)`` view over the record files.

    ``_write_store`` indexes this while writing page files, so only one
    tile's payload is in RAM at a time — the streamed build never holds
    all payloads simultaneously the way the in-memory path does.
    """

    def __init__(
        self,
        files: Tuple[SpillFile, SpillFile],
        tiles: List[Tuple[int, int, int]],
        dimension: int,
        oids: Optional[np.ndarray],
    ):
        self._files = files
        self._tiles = tiles
        self._dimension = dimension
        self._oids = oids

    def __len__(self) -> int:
        return len(self._tiles)

    def __getitem__(self, index: int) -> Tuple[np.ndarray, np.ndarray]:
        start, stop, src = self._tiles[index]
        block = self._files[src].read(start, stop)
        points = block[:, : self._dimension]
        indices = block[:, self._dimension].astype(np.int64)
        if self._oids is None:
            oids = indices
        else:
            oids = np.ascontiguousarray(self._oids[indices], dtype=np.int64)
        return points, oids


def stream_bulk_load_mmap(
    source: PointSource,
    declusterer: Union[Declusterer, Callable],
    directory: Union[str, os.PathLike],
    *,
    num_disks: Optional[int] = None,
    oids: Optional[Sequence[int]] = None,
    tree_cls: Type[RStarTree] = XTree,
    page_bytes: int = DEFAULT_PAGE_BYTES,
    fill: float = 0.85,
    cache_config: Optional[CacheConfig] = None,
    slot_bytes: Optional[int] = None,
    max_ram_bytes: int = DEFAULT_MAX_RAM_BYTES,
    chunk_rows: Optional[int] = None,
    dimension: Optional[int] = None,
) -> MmapStore:
    """STR bulk-load a larger-than-RAM point source into an mmap store.

    The out-of-core sibling of :func:`bulk_load_mmap`: ``source`` may be
    an array, a path to a 2-D C-order ``.npy`` file, or an iterable of
    row chunks, and is consumed in bounded-RAM chunks.  The STR sort
    passes run as external merge sorts over spill files in a ``.spill``
    directory inside the store directory (removed on success *and*
    failure), and leaf payloads are written straight into the per-disk
    page files one tile at a time.  Peak resident memory is bounded by
    ``max_ram_bytes`` (plus the O(pages) directory); ``chunk_rows``
    overrides the derived sort-chunk size directly (tests use 1 to
    force maximal spilling).

    The output is **byte-identical** to ``bulk_load_mmap`` on the same
    data: the chunked external sort reproduces the exact stable-sort
    permutations of the in-memory STR pass, and all downstream
    arithmetic (tile boundaries, directory grouping, declustering,
    slot assignment, file formats) is shared.  ``dimension`` is only
    required when ``source`` is an empty iterable.
    """
    if not 0.8 <= fill <= 1.0:
        raise ValueError(f"fill must be in [0.8, 1.0], got {fill}")
    if isinstance(declusterer, Declusterer):
        num_disks = declusterer.num_disks
    elif num_disks is None:
        raise ValueError("num_disks is required for a callable assignment")

    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    spill = path / SPILL_DIR_NAME
    spill.mkdir(exist_ok=True)
    try:
        records_a, records_b, count, dim, rows = _ingest(
            source, spill, max_ram_bytes, chunk_rows, dimension
        )
        try:
            oids_arr: Optional[np.ndarray] = None
            if oids is not None:
                oids_arr = np.asarray(oids, dtype=np.int64)
                if oids_arr.shape != (count,):
                    raise ValueError(
                        f"oids must have shape ({count},), got "
                        f"{oids_arr.shape}"
                    )
            tree = tree_cls(dim, page_bytes=page_bytes)
            files = (records_a, records_b)
            tiles: List[Tuple[int, int, int]] = []
            leaves: List[Node] = []
            order: List[int] = []
            if count:
                capacity = max(4, int(tree.leaf_cap * fill))
                tiles, lows, highs = _stream_tiles(
                    files, count, dim, capacity, rows, spill
                )
                leaves, order = _directory_from_tiles(
                    tree, lows, highs, fill, count
                )

            if leaves:
                centers = np.vstack([leaf.mbr.center for leaf in leaves])
                if isinstance(declusterer, Declusterer):
                    page_disks = np.asarray(
                        declusterer.assign(centers), dtype=np.int64
                    )
                else:
                    page_disks = np.asarray(
                        declusterer(centers), dtype=np.int64
                    )
                if len(page_disks) != len(leaves):
                    raise RuntimeError("page assignment has wrong length")
                if page_disks.min() < 0 or page_disks.max() >= num_disks:
                    raise RuntimeError(
                        "page assignment outside [0, num_disks)"
                    )
            else:
                page_disks = np.zeros(0, dtype=np.int64)

            header = _tree_header(tree)
            header["store_format_version"] = _STORE_FORMAT_VERSION
            header["num_disks"] = num_disks
            header["scheme"] = getattr(declusterer, "name", "custom")
            header["cache"] = _encode_cache(cache_config)

            ordered = [tiles[index] for index in order]
            _write_store(
                directory,
                tree,
                header,
                leaves,
                _SpillPayloads(files, ordered, dim, oids_arr),
                page_disks,
                int(num_disks),
                page_bytes,
                slot_bytes,
                payload_counts=[stop - start for start, stop, _ in ordered],
            )
        finally:
            records_a.delete()
            records_b.delete()
    finally:
        shutil.rmtree(spill, ignore_errors=True)
    return MmapStore(directory)
