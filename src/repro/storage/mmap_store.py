"""Out-of-core paged store: RAM-resident directory, mmap'd data pages.

The paper's model keeps the (small) tree directory cached on every
workstation while data pages live on the disks.  :class:`MmapStore`
makes that literal: the directory — inner nodes plus leaf MBRs — is
rebuilt in RAM from ``tree.npz``, while every leaf *payload* (oids +
points) lives in its disk's page file (:mod:`repro.storage.pagefile`)
and is served through a read-only memory map on demand.

``MmapStore`` is a drop-in behind the :class:`~repro.parallel.paged.PagedStore`
query surface (``tree`` / ``leaves`` / ``page_disks`` / ``disk_of`` /
``disk_loads``), so :class:`~repro.parallel.paged.PagedEngine` runs over
it unchanged — scoring payloads fetched via :meth:`MmapStore.read_page`
instead of in-memory entries, with bit-for-bit identical results and
page counts (float64 round-trips exactly).  The charging contract is
unchanged too: a page read charges ``DiskArray.charge`` unless the
engine's buffer pool reports a hit; on a hit the payload is still
decoded from the mapping, which the OS page cache serves from RAM —
the warm read is free in the simulated accounting *and* cheap in wall
clock.  See ``docs/storage.md``.

On-disk layout of a store directory::

    store.json      store header (format version, disks, scheme, cache)
    tree.npz        directory arrays + leaf MBR bounds + page->disk map
    disk0000.pages  page file of disk 0 (see repro.storage.pagefile)
    disk0001.pages  ...
"""

from __future__ import annotations

import io
import json
import os
import time
import zipfile
from pathlib import Path
from typing import Dict, List, Optional, Protocol, Sequence, Tuple, Union

import numpy as np

from repro.index.mbr import MBR
from repro.index.node import Node
from repro.index.rstar import RStarTree
from repro.parallel.cache import CacheConfig
from repro.parallel.paged import PagedStore
from repro.persistence import (
    FrozenAssignment,
    _check_store_version,
    _check_tree_version,
    _decode_cache,
    _flatten,
    _rebuild_skeleton,
    _store_header,
)
from repro.storage.pagefile import (
    PageFile,
    PageFileWriter,
    PageFormatError,
)

__all__ = [
    "MmapStore",
    "save_mmap_store",
    "load_mmap_store",
    "STORE_JSON",
    "TREE_NPZ",
    "SIMULATED_DISK_MS_ENV",
]

#: Store-header file inside a store directory.
STORE_JSON = "store.json"

#: Environment knob: simulated disk service time in milliseconds per
#: page *block*, slept inside :meth:`MmapStore.read_page`.  The page
#: files live on media (tmpfs, SSD page cache) many orders of magnitude
#: faster than the rotating disks whose overlap the paper measures;
#: this restores a physical service time so wall-clock benchmarks
#: (``benchmarks/bench_wallclock.py``) can observe I/O overlap across
#: per-disk workers.  Read once when a store is opened — per-disk
#: worker processes inherit it through the environment at spawn.
SIMULATED_DISK_MS_ENV = "REPRO_SIMULATED_DISK_MS"

#: Directory/tree arrays file inside a store directory.
TREE_NPZ = "tree.npz"


def _page_file_name(disk: int) -> str:
    return f"disk{disk:04d}.pages"


class _PayloadSource(Protocol):
    """Indexed access to per-leaf ``(points, oids)`` payloads.

    A plain list of tuples satisfies this; the streaming bulk loader
    passes a lazy view that reads each tile back from its spill file
    only when the page-file writer asks for it, so payloads never all
    coexist in RAM.
    """

    def __len__(self) -> int:
        """Number of leaf payloads (one per store-order leaf)."""
        ...

    def __getitem__(self, index: int) -> Tuple[np.ndarray, np.ndarray]:
        """Payload ``(points, oids)`` of the ``index``-th leaf."""
        ...


def _savez_deterministic(
    path: Union[str, os.PathLike], arrays: Dict[str, np.ndarray]
) -> None:
    """``np.savez_compressed`` with reproducible bytes.

    ``np.savez_compressed`` stamps each zip member with the current
    mtime, so two otherwise-identical stores differ. Writing the members
    ourselves with a fixed timestamp (and fixed permission bits) makes
    ``tree.npz`` a pure function of its arrays — the property the
    streaming-vs-in-memory byte-parity tests assert.  ``np.load`` reads
    the result like any other ``.npz``.
    """
    with zipfile.ZipFile(path, "w", zipfile.ZIP_DEFLATED) as archive:
        for name, value in arrays.items():
            payload = io.BytesIO()
            np.lib.format.write_array(
                payload, np.asanyarray(value), allow_pickle=False
            )
            info = zipfile.ZipInfo(
                name + ".npy", date_time=(1980, 1, 1, 0, 0, 0)
            )
            info.compress_type = zipfile.ZIP_DEFLATED
            info.external_attr = 0o600 << 16
            archive.writestr(info, payload.getvalue())


def _leaf_geometry(
    leaves: List[Node], counts: List[int], dimension: int
) -> Dict[str, np.ndarray]:
    """Leaf MBR bounds and entry counts as flat arrays (store order)."""
    if leaves:
        low = np.vstack([leaf.mbr.low for leaf in leaves])
        high = np.vstack([leaf.mbr.high for leaf in leaves])
    else:
        low = np.zeros((0, dimension))
        high = np.zeros((0, dimension))
    return {
        "leaf_low": low,
        "leaf_high": high,
        "leaf_counts": np.asarray(counts, dtype=np.int64),
    }


def _write_store(
    directory: Union[str, os.PathLike],
    tree: RStarTree,
    header: Dict,
    leaves: List[Node],
    payloads: _PayloadSource,
    page_disks: np.ndarray,
    num_disks: int,
    page_bytes: int,
    slot_bytes: Optional[int],
    payload_counts: Optional[Sequence[int]] = None,
) -> None:
    """Write ``store.json`` + ``tree.npz`` + one page file per disk.

    ``payloads`` holds each leaf's ``(points, oids)`` in store (pre-order)
    leaf order — a plain list, or any indexed view (the streaming bulk
    loader passes a lazy spill-file reader so payloads are fetched one
    page at a time).  ``payload_counts`` supplies per-leaf entry counts
    when iterating ``payloads`` up front would defeat that laziness.
    ``slot_bytes`` defaults to ``page_bytes`` times the widest leaf
    (supernode-aware), the tight bound under the trees' capacity rules.
    """
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    dimension = tree.dimension
    if slot_bytes is None:
        widest = max((leaf.blocks for leaf in leaves), default=1)
        slot_bytes = page_bytes * widest

    # Per-disk slot numbering in store leaf order.
    page_slots = np.zeros(len(leaves), dtype=np.int64)
    next_slot = [0] * num_disks
    for index, disk in enumerate(page_disks):
        page_slots[index] = next_slot[int(disk)]
        next_slot[int(disk)] += 1

    for disk in range(num_disks):
        writer = PageFileWriter(
            path / _page_file_name(disk),
            disk_id=disk,
            num_slots=next_slot[disk],
            slot_bytes=slot_bytes,
            dimension=dimension,
            page_bytes=page_bytes,
        )
        try:
            for index in np.nonzero(page_disks == disk)[0]:
                points, oids = payloads[int(index)]
                writer.write_slot(int(page_slots[index]), oids, points)
        finally:
            writer.close()

    if payload_counts is None:
        counts = [len(payloads[i][1]) for i in range(len(payloads))]
    else:
        counts = [int(count) for count in payload_counts]

    arrays = _flatten(tree)
    # Payloads live in the page files; keep the npz directory-only.
    arrays["points"] = np.zeros((0, dimension))
    arrays["oids"] = np.zeros(0, dtype=np.int64)
    arrays["point_leaf"] = np.zeros(0, dtype=np.int64)
    arrays.update(_leaf_geometry(leaves, counts, dimension))
    arrays["page_disks"] = np.asarray(page_disks, dtype=np.int64)
    arrays["page_slots"] = page_slots
    arrays["header"] = np.array(json.dumps(header))
    _savez_deterministic(path / TREE_NPZ, arrays)

    store_meta = dict(header)
    store_meta["kind"] = "repro.mmap-store"
    store_meta["slot_bytes"] = slot_bytes
    store_meta["num_pages"] = len(leaves)
    (path / STORE_JSON).write_text(
        json.dumps(store_meta, indent=2, sort_keys=True) + "\n"
    )


def save_mmap_store(
    store: PagedStore,
    directory: Union[str, os.PathLike],
    slot_bytes: Optional[int] = None,
) -> None:
    """Persist a (in-memory) ``PagedStore`` as an out-of-core store.

    The tree directory, leaf MBRs, page-to-disk map, scheme name, and
    cache config go to ``tree.npz``/``store.json``; every leaf payload
    goes to its disk's page file.  ``slot_bytes`` overrides the page
    slot size (a payload larger than the slot raises
    :class:`~repro.storage.pagefile.SlotOverflowError` rather than
    truncating).
    """
    payloads: List[Tuple[np.ndarray, np.ndarray]] = []
    for leaf in store.leaves:
        if leaf.entries:
            points = np.vstack([entry.point for entry in leaf.entries])
            oids = np.array(
                [entry.oid for entry in leaf.entries], dtype=np.int64
            )
        else:
            points = np.zeros((0, store.tree.dimension))
            oids = np.zeros(0, dtype=np.int64)
        payloads.append((points, oids))
    _write_store(
        directory,
        store.tree,
        _store_header(store),
        list(store.leaves),
        payloads,
        np.asarray(store.page_disks, dtype=np.int64),
        store.num_disks,
        store.page_bytes,
        slot_bytes,
    )


class MmapStore:
    """Read-only out-of-core paged store opened from a store directory.

    Exposes the :class:`~repro.parallel.paged.PagedStore` query surface
    plus :meth:`read_page` / :meth:`entry_count`; engines detect the
    ``read_page`` hook and score mmap-served payloads instead of
    in-memory entries.  Page files are opened lazily per disk, so a
    per-disk worker process maps only its own disk's file.  Reopening
    a directory that another process (or store) currently maps is safe:
    mappings are read-only and the files are immutable once written.
    """

    #: Marks stores whose leaf payloads are not held in RAM.
    out_of_core = True

    def __init__(
        self,
        directory: Union[str, os.PathLike],
        *,
        simulated_disk_ms: Optional[float] = None,
    ):
        self.directory = Path(directory)
        if simulated_disk_ms is None:
            simulated_disk_ms = float(
                os.environ.get(SIMULATED_DISK_MS_ENV, "0") or 0.0
            )
        if simulated_disk_ms < 0:
            raise ValueError(
                f"simulated_disk_ms must be >= 0, got {simulated_disk_ms}"
            )
        self.simulated_disk_ms = simulated_disk_ms
        meta_path = self.directory / STORE_JSON
        if not meta_path.is_file():
            raise PageFormatError(
                f"{os.fspath(self.directory)!r} is not an mmap store "
                f"directory (missing {STORE_JSON})"
            )
        meta = json.loads(meta_path.read_text())
        _check_store_version(meta, f"mmap store {os.fspath(directory)!r}")
        with np.load(self.directory / TREE_NPZ, allow_pickle=False) as data:
            header = json.loads(str(data["header"]))
            _check_store_version(
                header, f"mmap store {os.fspath(directory)!r}"
            )
            _check_tree_version(header)
            tree, nodes = _rebuild_skeleton(data, header)
            leaf_low = data["leaf_low"]
            leaf_high = data["leaf_high"]
            leaf_counts = data["leaf_counts"]
            page_disks = data["page_disks"]
            page_slots = data["page_slots"]
        tree.size = int(header["size"])
        self.tree = tree
        self.page_bytes = int(header["page_bytes"])
        self.num_disks = int(header["num_disks"])
        self.scheme = str(header.get("scheme", "frozen"))
        self.cache_config: Optional[CacheConfig] = _decode_cache(
            header.get("cache")
        )
        self.slot_bytes = int(meta["slot_bytes"])

        # Leaf MBRs are explicit on disk (leaves own no entries here, so
        # they cannot be recomputed); directory MBRs are their unions.
        leaves = [node for node in nodes if node.is_leaf]
        if tree.size == 0:
            leaves = []
        if len(leaves) != len(page_disks):
            raise PageFormatError(
                f"mmap store {os.fspath(directory)!r} is inconsistent: "
                f"{len(leaves)} leaves but {len(page_disks)} page map rows"
            )
        for node, low, high in zip(leaves, leaf_low, leaf_high):
            node.mbr = MBR(low, high)
        for node in reversed(nodes):
            if not node.is_leaf:
                node.recompute_mbr()

        self.leaves: List[Node] = leaves
        self.page_disks = np.asarray(page_disks, dtype=np.int64)
        self.declusterer = FrozenAssignment(self.page_disks, name=self.scheme)
        self._counts = np.asarray(leaf_counts, dtype=np.int64)
        self._disk_of = {
            id(leaf): int(disk) for leaf, disk in zip(leaves, page_disks)
        }
        self._slot_of = {
            id(leaf): int(slot) for leaf, slot in zip(leaves, page_slots)
        }
        self._count_of = {
            id(leaf): int(count) for leaf, count in zip(leaves, leaf_counts)
        }
        self._page_files: Dict[int, PageFile] = {}
        self._closed = False

    # ----------------------------------------------------------- queries

    def disk_of(self, leaf: Node) -> int:
        """Disk storing a data page."""
        return self._disk_of[id(leaf)]

    def entry_count(self, leaf: Node) -> int:
        """Entries in a data page — from the directory, no payload read."""
        return self._count_of[id(leaf)]

    def disk_loads(self) -> np.ndarray:
        """Data pages stored per disk."""
        return np.bincount(self.page_disks, minlength=self.num_disks)

    def _page_file(self, disk: int) -> PageFile:
        if self._closed:
            raise ValueError(
                f"mmap store {os.fspath(self.directory)!r} is closed; "
                f"page reads after close() would silently remap the "
                f"files — reopen the store instead"
            )
        handle = self._page_files.get(disk)
        if handle is None:
            handle = PageFile(self.directory / _page_file_name(disk))
            self._page_files[disk] = handle
        return handle

    def read_page(self, leaf: Node) -> Tuple[np.ndarray, np.ndarray]:
        """Fetch one data page's ``(points, oids)`` payload via mmap.

        This is the simulated disk access: the first touch of a cold
        slot faults the mapping in; re-reads come from the OS page
        cache.  Engines decide separately (via their buffer pool)
        whether to *charge* the read to the :class:`DiskArray`.

        With ``simulated_disk_ms`` (or the ``REPRO_SIMULATED_DISK_MS``
        environment knob) set, every read also sleeps that many
        milliseconds per page block — a stand-in service time for the
        rotating disks the paper overlaps, so wall-clock benchmarks see
        real I/O wait instead of a page-cache hit.  Counters and
        results are unaffected.
        """
        payload = self._page_file(self.disk_of(leaf)).read_slot(
            self._slot_of[id(leaf)]
        )
        if self.simulated_disk_ms:
            time.sleep(self.simulated_disk_ms * leaf.blocks / 1000.0)
        return payload

    def __len__(self) -> int:
        return self.tree.size

    # --------------------------------------------------------- lifecycle

    def close(self) -> None:
        """Unmap every open page file (results remain valid — payload
        reads return owned copies).  Idempotent; after close,
        :meth:`read_page` raises :class:`ValueError` instead of
        silently remapping the page files."""
        for handle in self._page_files.values():
            handle.close()
        self._page_files = {}
        self._closed = True

    def __enter__(self) -> "MmapStore":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MmapStore({os.fspath(self.directory)!r}, n={self.tree.size}, "
            f"pages={len(self.leaves)}, disks={self.num_disks}, "
            f"scheme={self.scheme!r})"
        )


def load_mmap_store(directory: Union[str, os.PathLike]) -> MmapStore:
    """Open an out-of-core store directory (alias for ``MmapStore(dir)``)."""
    return MmapStore(directory)
