"""FX declustering of Kim & Pramanik [KP 88].

``FX(c_0, ..., c_{d-1}) = (XOR_i c_i) mod n`` — the coordinates are combined
with a bitwise XOR, which was designed for partial-match retrieval on files
with multi-bit field values.  On the paper's binary quadrant grid every
coordinate is a single bit, so the XOR collapses to the *parity* of the
bucket number: any two buckets of equal parity — in particular **all**
indirect neighbors, which differ in exactly two bits — get the same value
and, with n = 2, the same disk.  (Figure 7's FX cube.)
"""

from __future__ import annotations

from functools import reduce

from repro.core.bits import bucket_coordinates
from repro.core.declustering import BucketDeclusterer

__all__ = ["FXDeclusterer"]


class FXDeclusterer(BucketDeclusterer):
    """``disk = (XOR of grid coordinates) mod n`` [KP 88]."""

    name = "FX"

    def disk_for_bucket(self, bucket: int) -> int:
        coordinates = bucket_coordinates(bucket, self.dimension)
        return reduce(lambda a, b: a ^ b, coordinates, 0) % self.num_disks
