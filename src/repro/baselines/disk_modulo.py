"""Disk Modulo declustering of Du & Sobolewski [DS 82].

``DM(c_0, ..., c_{d-1}) = (sum_i c_i) mod n`` — designed for partial-match
queries on Cartesian product files.  For the binary quadrant grid of the
paper this degenerates badly: the sum of a quadrant bitstring is its
popcount, so all ``C(d, k)`` buckets with ``k`` set bits share a disk
whenever they agree modulo ``n``, and many *indirect* neighbors (2-bit
changes that keep the popcount, e.g. ``01 -> 10``) always collide.  This is
exactly the Figure 7 counterexample.
"""

from __future__ import annotations

from repro.core.bits import bucket_coordinates
from repro.core.declustering import BucketDeclusterer

__all__ = ["DiskModuloDeclusterer"]


class DiskModuloDeclusterer(BucketDeclusterer):
    """``disk = (sum of grid coordinates) mod n`` [DS 82]."""

    name = "DM"

    def disk_for_bucket(self, bucket: int) -> int:
        coordinates = bucket_coordinates(bucket, self.dimension)
        return sum(coordinates) % self.num_disks
