"""Hilbert declustering of Faloutsos & Bhagwat [FB 93].

``HI(c_0, ..., c_{d-1}) = Hilbert(c_0, ..., c_{d-1}) mod n``: a grid cell is
stored on the disk given by its position along the d-dimensional Hilbert
curve, modulo the disk count.  Because the curve preserves spatial
proximity, cells that are close in space tend to be far apart modulo ``n``,
which made this the best known declustering for *range queries in low
dimensions*.  The paper shows it is not near-optimal for high-dimensional
nearest-neighbor search (Lemma 1 / Figure 7) and beats it by up to ~5x.

The bucket grid of the paper is binary (one split per dimension,
``order=1``); finer grids are supported through the ``order`` parameter for
range-query experiments.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.bits import bucket_coordinates
from repro.core.declustering import BucketDeclusterer
from repro.hilbert import HilbertCurve

__all__ = ["HilbertDeclusterer"]


class HilbertDeclusterer(BucketDeclusterer):
    """``disk = hilbert_index(bucket) mod n`` [FB 93]."""

    name = "HIL"

    def __init__(
        self,
        dimension: int,
        num_disks: int,
        split_values: Optional[Sequence[float]] = None,
        order: int = 1,
    ):
        super().__init__(dimension, num_disks, split_values)
        self.curve = HilbertCurve(dimension, order)
        if order != 1 and split_values is not None:
            raise ValueError(
                "custom split_values only make sense for the binary grid "
                "(order=1)"
            )

    def disk_for_bucket(self, bucket: int) -> int:
        coordinates = bucket_coordinates(bucket, self.dimension)
        return self.curve.index_of(coordinates) % self.num_disks

    def disk_for_cell(self, coordinates: Sequence[int]) -> int:
        """Disk of an arbitrary grid cell (for ``order > 1`` grids)."""
        return self.curve.index_of(coordinates) % self.num_disks

    def assign(self, points: np.ndarray) -> np.ndarray:
        if self.curve.order == 1:
            return super().assign(points)
        points = np.asarray(points, dtype=float)
        cells = np.clip(
            (points * self.curve.side).astype(np.int64), 0, self.curve.side - 1
        )
        return np.fromiter(
            (self.disk_for_cell(cell) for cell in cells),
            dtype=np.int64,
            count=len(cells),
        )
