"""Round-robin declustering: the geometry-blind baseline of Section 3.

Item ``j`` (in insertion order) is stored on disk ``j mod n``.  Because the
assignment ignores where a point lies, the pages a query touches are spread
over the disks only *statistically*; the paper's Figure 2 shows this already
yields a useful speed-up, and Figure 3 shows how much better a
geometry-aware method (Hilbert) does.
"""

from __future__ import annotations

import numpy as np

from repro.core.declustering import Declusterer

__all__ = ["RoundRobinDeclusterer"]


class RoundRobinDeclusterer(Declusterer):
    """Assigns points to disks cyclically by their position in the input.

    The declusterer is stateful across calls so that successive batches
    continue the cycle, matching an insertion-order round robin.
    """

    name = "RR"

    def __init__(self, dimension: int, num_disks: int):
        super().__init__(dimension, num_disks)
        self._next_index = 0

    def assign(self, points: np.ndarray) -> np.ndarray:
        points = np.asarray(points)
        if points.ndim != 2 or points.shape[1] != self.dimension:
            raise ValueError(
                f"points must be (N, {self.dimension}), got {points.shape}"
            )
        count = points.shape[0]
        start = self._next_index
        self._next_index = (start + count) % self.num_disks
        return (start + np.arange(count, dtype=np.int64)) % self.num_disks

    def reset(self) -> None:
        """Restart the cycle at disk 0."""
        self._next_index = 0
