"""Baseline declustering methods the paper compares against.

* :class:`RoundRobinDeclusterer` — item ``j`` goes to disk ``j mod n``.
* :class:`DiskModuloDeclusterer` — Du & Sobolewski [DS 82].
* :class:`FXDeclusterer` — Kim & Pramanik's bitwise-XOR method [KP 88].
* :class:`HilbertDeclusterer` — Faloutsos & Bhagwat's fractal method
  [FB 93], the strongest prior technique and the paper's main comparator.
"""

from __future__ import annotations

from repro.baselines.disk_modulo import DiskModuloDeclusterer
from repro.baselines.fx import FXDeclusterer
from repro.baselines.hilbert_decluster import HilbertDeclusterer
from repro.baselines.round_robin import RoundRobinDeclusterer

__all__ = [
    "DiskModuloDeclusterer",
    "FXDeclusterer",
    "HilbertDeclusterer",
    "RoundRobinDeclusterer",
]
