"""X-tree [BKK 96]: the high-dimensional index used in the paper.

The X-tree extends the R\\*-tree with two mechanisms that avoid directory
degeneration in high dimensions:

* **overlap-minimal split** — when the topological (R\\*) split of a
  directory node would produce heavily overlapping halves, re-split along a
  dimension recorded in the *split history* of the children, which yields
  (nearly) overlap-free halves;
* **supernodes** — when even the overlap-minimal split would be unbalanced,
  the node is not split at all: it grows by one page ("block") and is read
  linearly.  I/O accounting charges a supernode as ``blocks`` pages.

Data (leaf) nodes always use the topological split, as in the original
X-tree.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.index.mbr import MBR
from repro.index.node import Node
from repro.index.rstar import Entry, RStarTree

__all__ = ["XTree"]


class XTree(RStarTree):
    """X-tree: R\\*-tree plus supernodes and overlap-minimal splits.

    Parameters
    ----------
    max_overlap:
        Maximal tolerated overlap ratio of a directory split (the original
        paper derives ~0.2 as the break-even point of overlap-induced
        multi-path queries vs. larger nodes).
    max_blocks:
        Safety cap on supernode width in pages.
    Other parameters are inherited from :class:`RStarTree`.
    """

    def __init__(
        self,
        dimension: int,
        max_overlap: float = 0.2,
        max_blocks: int = 64,
        **kwargs,
    ):
        super().__init__(dimension, **kwargs)
        if not 0.0 <= max_overlap <= 1.0:
            raise ValueError(f"max_overlap must be in [0, 1], got {max_overlap}")
        if max_blocks < 1:
            raise ValueError(f"max_blocks must be >= 1, got {max_blocks}")
        self.max_overlap = max_overlap
        self.max_blocks = max_blocks

    # ----------------------------------------------------------- split

    def _split_entries(
        self, node: Node
    ) -> Optional[Tuple[List[Entry], List[Entry], int]]:
        left, right, axis = self._topological_split(node)
        if node.is_leaf:
            # Data nodes always split topologically (original X-tree).
            return left, right, axis
        if self._overlap_ratio(left, right) <= self.max_overlap:
            return left, right, axis
        minimal = self._overlap_minimal_split(node)
        if minimal is not None:
            return minimal
        # No good split exists: absorb the overflow into a supernode.
        if node.blocks < self.max_blocks:
            node.blocks += 1
            return None
        # Emergency fallback: a balanced topological split beats an
        # unbounded supernode.
        return left, right, axis

    @staticmethod
    def _overlap_ratio(left: List[Entry], right: List[Entry]) -> float:
        """Intersection volume of the two halves relative to their union."""
        left_mbr = MBR.union_of(e.mbr for e in left)
        right_mbr = MBR.union_of(e.mbr for e in right)
        union_area = left_mbr.union(right_mbr).area()
        if union_area <= 0.0:
            # Degenerate (zero-volume) MBRs: fall back to a containment test.
            return 1.0 if left_mbr.intersects(right_mbr) else 0.0
        return left_mbr.overlap(right_mbr) / union_area

    def _overlap_minimal_split(
        self, node: Node
    ) -> Optional[Tuple[List[Entry], List[Entry], int]]:
        """Split a directory node along a split-history dimension.

        A dimension in the split history of *every* child is one along which
        all child subtrees have been separated before, so re-splitting there
        yields (nearly) disjoint halves.  Returns None when no common
        dimension exists or every candidate split is unbalanced.
        """
        children: List[Node] = node.entries  # type: ignore[assignment]
        common = set(range(self.dimension))
        for child in children:
            common &= child.split_history
            if not common:
                return None
        min_entries = self.min_entries(node)
        best = None
        best_key = None
        for axis in sorted(common):
            ordering = sorted(
                children, key=lambda c: float(c.mbr.low[axis])
            )
            for split_at in self._split_positions(len(ordering), min_entries):
                left = ordering[:split_at]
                right = ordering[split_at:]
                ratio = self._overlap_ratio(left, right)
                balance = abs(len(left) - len(right))
                key = (ratio, balance)
                if best_key is None or key < best_key:
                    best_key = key
                    best = (left, right, axis)
        if best is None or best_key[0] > self.max_overlap:
            return None
        return best

    # ------------------------------------------------------------ stats

    def supernode_count(self) -> int:
        """Number of supernodes currently in the tree."""
        count = 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.blocks > 1:
                count += 1
            if not node.is_leaf:
                stack.extend(node.entries)
        return count
