"""Welch's bucketing algorithm [Wel 71]: grid cells visited by distance.

The earliest algorithm in the paper's Section 2 review: divide the space
into identical cells, attach each point to its cell, and answer an NN
query by visiting cells in order of their distance to the query until the
nearest found point is closer than every unvisited cell.

The cell count is ``cells_per_dim ** d`` — which is exactly why the
algorithm "is not efficient for high-dimensional data" (paper, Section 2)
and why the paper's declustering works on *binary* quadrants only.  The
implementation stores only the occupied cells (a dict), but the visit
order enumeration still degrades with ``d``; the sequential-index ablation
quantifies that.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.index.knn import Neighbor, SearchStats, _CandidateSet

__all__ = ["GridIndex"]


class GridIndex:
    """Uniform-grid index with distance-ordered cell visiting.

    Parameters
    ----------
    points:
        ``(N, d)`` array in ``[0, 1]^d``.
    cells_per_dim:
        Grid resolution per dimension (Welch's identical cells).
    oids:
        Object ids, default ``0..N-1``.
    """

    def __init__(
        self,
        points: np.ndarray,
        cells_per_dim: int = 4,
        oids: Optional[Sequence[int]] = None,
    ):
        points = np.asarray(points, dtype=float)
        if points.ndim != 2:
            raise ValueError(f"points must be (N, d), got {points.shape}")
        if cells_per_dim < 1:
            raise ValueError(
                f"cells_per_dim must be >= 1, got {cells_per_dim}"
            )
        self.points = points
        self.cells_per_dim = cells_per_dim
        self.dimension = points.shape[1] if points.size else 0
        if oids is None:
            oids = np.arange(len(points))
        self.oids = np.asarray(oids)
        self.cell_width = 1.0 / cells_per_dim
        self.cells: Dict[Tuple[int, ...], List[int]] = {}
        coordinates = np.clip(
            (points * cells_per_dim).astype(int), 0, cells_per_dim - 1
        )
        for index, cell in enumerate(map(tuple, coordinates)):
            self.cells.setdefault(cell, []).append(index)

    def cell_of(self, point: Sequence[float]) -> Tuple[int, ...]:
        """Grid cell containing a point."""
        point = np.asarray(point, dtype=float)
        coords = np.clip(
            (point * self.cells_per_dim).astype(int),
            0,
            self.cells_per_dim - 1,
        )
        return tuple(int(c) for c in coords)

    def _cell_mindist(
        self, cell: Tuple[int, ...], query: np.ndarray
    ) -> float:
        low = np.array(cell) * self.cell_width
        high = low + self.cell_width
        gap = np.maximum(np.maximum(low - query, query - high), 0.0)
        return float(gap @ gap)

    def _neighbors_of(self, cell: Tuple[int, ...]):
        """All grid cells adjacent (including diagonally) to ``cell``."""
        ranges = [
            range(max(0, c - 1), min(self.cells_per_dim, c + 2))
            for c in cell
        ]
        for candidate in itertools.product(*ranges):
            if candidate != cell:
                yield candidate

    def knn(
        self, query: Sequence[float], k: int = 1
    ) -> Tuple[List[Neighbor], SearchStats]:
        """Welch's search: expand cells best-first from the query cell.

        Cells are charged one page each; the frontier grows through grid
        adjacency, so only cells near the final NN sphere are enumerated.
        """
        query = np.asarray(query, dtype=float)
        stats = SearchStats()
        candidates = _CandidateSet(k)
        if not len(self.points):
            return [], stats
        start = self.cell_of(query)
        tiebreak = itertools.count()
        heap = [(self._cell_mindist(start, query), next(tiebreak), start)]
        seen = {start}
        while heap:
            mindist, _, cell = heapq.heappop(heap)
            if mindist > candidates.bound:
                break
            occupants = self.cells.get(cell)
            if occupants:
                stats.node_accesses += 1
                stats.leaf_accesses += 1
                stats.page_accesses += 1
                subset = self.points[occupants]
                deltas = subset - query
                sq = np.einsum("ij,ij->i", deltas, deltas)
                stats.distance_computations += len(occupants)
                for distance, index in zip(sq, occupants):
                    candidates.offer(
                        float(distance), int(self.oids[index]),
                        self.points[index],
                    )
            for neighbor in self._neighbors_of(cell):
                if neighbor not in seen:
                    seen.add(neighbor)
                    heapq.heappush(
                        heap,
                        (
                            self._cell_mindist(neighbor, query),
                            next(tiebreak),
                            neighbor,
                        ),
                    )
        return candidates.neighbors(), stats

    def __len__(self) -> int:
        return len(self.points)

    def occupied_cells(self) -> int:
        """Number of non-empty grid cells."""
        return len(self.cells)
