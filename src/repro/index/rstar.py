"""R\\*-tree [BKSS 90]: the dynamic index substrate under the X-tree.

Implements the full R\\*-tree insertion pipeline — ChooseSubtree with
overlap-enlargement at the leaf-parent level, forced reinsertion (once per
level per insertion), and the topological split (ChooseSplitAxis by margin
sum, ChooseSplitIndex by overlap then area) — plus deletion with tree
condensation, point/range/window queries, and structural invariants used by
the tests.

Node capacities default to what fits a 4 KB page (the paper's page size) at
the given dimensionality.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.index.mbr import MBR
from repro.index.node import (
    DEFAULT_PAGE_BYTES,
    LeafEntry,
    Node,
    directory_capacity,
    leaf_capacity,
)

__all__ = ["RStarTree"]

Entry = Union[LeafEntry, Node]


class RStarTree:
    """A dynamic R\\*-tree over d-dimensional points.

    Parameters
    ----------
    dimension:
        Dimensionality of the indexed points.
    page_bytes:
        Disk page size used to derive node capacities (default 4 KB).
    leaf_cap, dir_cap:
        Explicit capacities; default derived from ``page_bytes``.
    min_fill:
        Minimum node utilization as a fraction of capacity (R\\*: 0.4).
    reinsert_fraction:
        Fraction of entries force-reinserted on first overflow (R\\*: 0.3).
    """

    def __init__(
        self,
        dimension: int,
        page_bytes: int = DEFAULT_PAGE_BYTES,
        leaf_cap: Optional[int] = None,
        dir_cap: Optional[int] = None,
        min_fill: float = 0.4,
        reinsert_fraction: float = 0.3,
    ):
        if dimension < 1:
            raise ValueError(f"dimension must be >= 1, got {dimension}")
        if not 0.0 < min_fill <= 0.5:
            raise ValueError(f"min_fill must be in (0, 0.5], got {min_fill}")
        if not 0.0 < reinsert_fraction < 1.0:
            raise ValueError(
                f"reinsert_fraction must be in (0, 1), got {reinsert_fraction}"
            )
        self.dimension = dimension
        self.page_bytes = page_bytes
        self.leaf_cap = leaf_cap or leaf_capacity(dimension, page_bytes)
        self.dir_cap = dir_cap or directory_capacity(dimension, page_bytes)
        if self.leaf_cap < 4 or self.dir_cap < 4:
            raise ValueError("node capacities must be at least 4")
        self.min_fill = min_fill
        self.reinsert_fraction = reinsert_fraction
        self.root = Node(is_leaf=True)
        self.size = 0

    # ------------------------------------------------------------ basics

    def capacity(self, node: Node) -> int:
        """Entry capacity of a node (supernodes scale with ``blocks``)."""
        base = self.leaf_cap if node.is_leaf else self.dir_cap
        return base * node.blocks

    def min_entries(self, node: Node) -> int:
        base = self.leaf_cap if node.is_leaf else self.dir_cap
        return max(2, int(base * self.min_fill))

    @property
    def height(self) -> int:
        """Number of levels; a tree holding only a root leaf has height 1."""
        return self.root.height()

    def leaves(self) -> Sequence[Node]:
        return self.root.iter_leaves()

    def num_pages(self) -> int:
        """Total disk pages of the index."""
        return self.root.count_pages()

    def __len__(self) -> int:
        return self.size

    # ------------------------------------------------------------ insert

    def insert(self, point: Sequence[float], oid: int) -> None:
        """Insert one point with the given object identifier."""
        point = np.asarray(point, dtype=float)
        if point.shape != (self.dimension,):
            raise ValueError(
                f"point must have shape ({self.dimension},), got {point.shape}"
            )
        # One forced reinsert allowed per level per insertion (R* OT1).
        self._reinserted_levels: set = set()
        self._insert_entry(LeafEntry(point, oid), level=0)
        self.size += 1

    def extend(self, points: np.ndarray,
               oids: Optional[Sequence[int]] = None) -> None:
        """Insert many points; oids default to a running counter."""
        points = np.asarray(points, dtype=float)
        if oids is None:
            oids = range(self.size, self.size + len(points))
        for point, oid in zip(points, oids):
            self.insert(point, oid)

    def _level_of(self, node: Node) -> int:
        """Level of a node counted from the leaves (leaf = 0)."""
        return node.height() - 1

    def _insert_entry(self, entry: Entry, level: int) -> None:
        path = self._choose_path(entry.mbr, level)
        node = path[-1]
        node.entries.append(entry)
        self._adjust_mbrs(path, entry.mbr)
        if len(node.entries) > self.capacity(node):
            self._overflow(path, level)

    def _choose_path(self, entry_mbr: MBR, level: int) -> List[Node]:
        """Root-to-target path choosing subtrees the R\\* way.

        ``level`` is the tree level (from leaves) at which the entry must be
        placed: 0 for data points, >0 when reinserting orphaned subtrees.
        """
        path = [self.root]
        node = self.root
        while self._level_of(node) > level:
            node = self._choose_subtree(node, entry_mbr)
            path.append(node)
        return path

    def _choose_subtree(self, node: Node, entry_mbr: MBR) -> Node:
        children: List[Node] = node.entries  # type: ignore[assignment]
        lows = np.vstack([child.mbr.low for child in children])
        highs = np.vstack([child.mbr.high for child in children])
        areas = np.prod(highs - lows, axis=1)
        new_lows = np.minimum(lows, entry_mbr.low)
        new_highs = np.maximum(highs, entry_mbr.high)
        new_areas = np.prod(new_highs - new_lows, axis=1)
        enlargements = new_areas - areas
        if children[0].is_leaf:
            # Children are leaves: minimize overlap enlargement
            # (ties: area enlargement, then area).  Pairwise overlap of the
            # enlarged candidate against all siblings, vectorized.
            def pairwise_overlap(c_lows: np.ndarray,
                                 c_highs: np.ndarray) -> np.ndarray:
                widths = np.minimum(c_highs[:, None, :], highs[None, :, :])
                widths -= np.maximum(c_lows[:, None, :], lows[None, :, :])
                return np.clip(widths, 0.0, None).prod(axis=2)

            before = pairwise_overlap(lows, highs)
            after = pairwise_overlap(new_lows, new_highs)
            np.fill_diagonal(before, 0.0)
            np.fill_diagonal(after, 0.0)
            deltas = after.sum(axis=1) - before.sum(axis=1)
            order = np.lexsort((areas, enlargements, deltas))
        else:
            # Children are directory nodes: minimize area enlargement.
            order = np.lexsort((areas, enlargements))
        return children[int(order[0])]

    def _adjust_mbrs(self, path: List[Node], entry_mbr: MBR) -> None:
        for node in path:
            node.extend_mbr(entry_mbr)

    # ---------------------------------------------------------- overflow

    def _overflow(self, path: List[Node], level: int) -> None:
        node = path[-1]
        is_root = node is self.root
        if not is_root and level not in self._reinserted_levels:
            self._reinserted_levels.add(level)
            self._reinsert(path, level)
        else:
            self._split_node(path, level)

    def _reinsert(self, path: List[Node], level: int) -> None:
        """R\\* forced reinsert: evict the entries farthest from the node
        center and insert them again (close reinsert)."""
        node = path[-1]
        center = node.mbr.center
        keyed = sorted(
            node.entries,
            key=lambda entry: float(
                np.sum((entry.mbr.center - center) ** 2)
            ),
        )
        count = max(1, int(len(keyed) * self.reinsert_fraction))
        keep, evicted = keyed[:-count], keyed[-count:]
        node.entries = list(keep)
        node.recompute_mbr()
        for ancestor in reversed(path[:-1]):
            ancestor.recompute_mbr()
        # Close reinsert: nearest evicted entries first.
        for entry in evicted:
            self._insert_entry(entry, level)

    def _split_node(self, path: List[Node], level: int) -> None:
        node = path[-1]
        split = self._split_entries(node)
        if split is None:
            return  # subclass absorbed the overflow (X-tree supernode)
        left_entries, right_entries, axis = split
        self._apply_split(path, node, left_entries, right_entries, axis)

    def _apply_split(
        self,
        path: List[Node],
        node: Node,
        left_entries: List[Entry],
        right_entries: List[Entry],
        axis: int,
    ) -> None:
        history = node.split_history | {axis}
        right = Node(
            node.is_leaf, right_entries, split_history=set(history)
        )
        node.entries = left_entries
        node.blocks = 1
        node.split_history = set(history)
        node.recompute_mbr()
        if node is self.root:
            new_root = Node(is_leaf=False, entries=[node, right])
            self.root = new_root
            return
        parent = path[-2]
        parent.entries.append(right)
        parent.recompute_mbr()
        for ancestor in reversed(path[:-1]):
            ancestor.recompute_mbr()
        if len(parent.entries) > self.capacity(parent):
            self._overflow(path[:-1], self._level_of(parent))

    # The topological (R*) split. Returns (left, right, axis) or None when a
    # subclass decides not to split at all.
    def _split_entries(
        self, node: Node
    ) -> Optional[Tuple[List[Entry], List[Entry], int]]:
        return self._topological_split(node)

    @staticmethod
    def _entry_bounds(entries: List[Entry]) -> Tuple[np.ndarray, np.ndarray]:
        """Stacked (lows, highs) arrays of the entries' MBRs."""
        if isinstance(entries[0], LeafEntry):
            points = np.vstack([e.point for e in entries])
            return points, points
        lows = np.vstack([e.mbr.low for e in entries])
        highs = np.vstack([e.mbr.high for e in entries])
        return lows, highs

    def _topological_split(
        self, node: Node
    ) -> Tuple[List[Entry], List[Entry], int]:
        """The R\\* split, fully vectorized.

        ChooseSplitAxis: the axis with minimal margin sum over all candidate
        distributions of both orderings (by low and by high value).
        ChooseSplitIndex: on that axis, the distribution with minimal
        overlap, ties broken by combined area.
        """
        entries = node.entries
        lows, highs = self._entry_bounds(entries)
        total = len(entries)
        min_entries = self.min_entries(node)
        positions = np.arange(min_entries, total - min_entries + 1)

        best_axis = 0
        best_margin = None
        # Per axis: (overlap, area) of the best distribution plus how to
        # materialize it (ordering indices and the split position).
        per_axis_choice = {}
        for axis in range(self.dimension):
            margin_total = 0.0
            axis_best = None
            for sort_key in (lows[:, axis], highs[:, axis]):
                order = np.argsort(sort_key, kind="stable")
                o_lows, o_highs = lows[order], highs[order]
                left_low = np.minimum.accumulate(o_lows, axis=0)
                left_high = np.maximum.accumulate(o_highs, axis=0)
                right_low = np.minimum.accumulate(o_lows[::-1], axis=0)[::-1]
                right_high = np.maximum.accumulate(o_highs[::-1], axis=0)[::-1]
                # Split k puts entries [0, k) left and [k, total) right.
                ll, lh = left_low[positions - 1], left_high[positions - 1]
                rl, rh = right_low[positions], right_high[positions]
                margins = (lh - ll).sum(axis=1) + (rh - rl).sum(axis=1)
                margin_total += float(margins.sum())
                widths = np.minimum(lh, rh) - np.maximum(ll, rl)
                overlaps = np.clip(widths, 0.0, None).prod(axis=1)
                areas = (lh - ll).prod(axis=1) + (rh - rl).prod(axis=1)
                pick = int(np.lexsort((areas, overlaps))[0])
                key = (float(overlaps[pick]), float(areas[pick]))
                if axis_best is None or key < axis_best[0]:
                    axis_best = (key, order, int(positions[pick]))
            per_axis_choice[axis] = axis_best
            if best_margin is None or margin_total < best_margin:
                best_margin = margin_total
                best_axis = axis

        _, order, split_at = per_axis_choice[best_axis]
        left = [entries[i] for i in order[:split_at]]
        right = [entries[i] for i in order[split_at:]]
        return left, right, best_axis

    @staticmethod
    def _split_positions(total: int, min_entries: int) -> range:
        """Valid split points leaving >= min_entries on both sides."""
        return range(min_entries, total - min_entries + 1)

    # ------------------------------------------------------------ delete

    def delete(self, point: Sequence[float], oid: int) -> bool:
        """Remove the entry with the given oid at the given point.

        Returns True if an entry was removed.  Underflowing nodes are
        dissolved and their entries reinserted (R-tree CondenseTree).
        """
        point = np.asarray(point, dtype=float)
        found = self._find_leaf(self.root, [], point, oid)
        if found is None:
            return False
        path, entry = found
        leaf = path[-1]
        leaf.entries.remove(entry)
        self.size -= 1
        self._condense(path)
        # Shrink the root while it is a directory with a single child.
        while not self.root.is_leaf and len(self.root.entries) == 1:
            self.root = self.root.entries[0]
        if self.size == 0:
            self.root = Node(is_leaf=True)
        return True

    def _find_leaf(
        self, node: Node, path: List[Node], point: np.ndarray, oid: int
    ) -> Optional[Tuple[List[Node], LeafEntry]]:
        path = path + [node]
        if node.is_leaf:
            for entry in node.entries:
                if entry.oid == oid and np.array_equal(entry.point, point):
                    return path, entry
            return None
        for child in node.entries:
            if child.mbr is not None and child.mbr.contains_point(point):
                found = self._find_leaf(child, path, point, oid)
                if found is not None:
                    return found
        return None

    def _condense(self, path: List[Node]) -> None:
        """CondenseTree: dissolve underfull nodes along the deletion path
        and reinsert their data points.

        Orphaned subtrees are decomposed into their leaf entries, which
        are reinserted at level 0 — simpler than the classic same-level
        subtree reinsertion and immune to height changes happening during
        the reinsertion cascade.
        """
        orphans: List[LeafEntry] = []
        for depth in range(len(path) - 1, 0, -1):
            node = path[depth]
            parent = path[depth - 1]
            if len(node.entries) < self.min_entries(node):
                parent.entries.remove(node)
                for leaf in node.iter_leaves():
                    orphans.extend(leaf.entries)
            else:
                node.recompute_mbr()
        path[0].recompute_mbr()
        # The root may have become an empty leaf holder; normalize before
        # reinserting so _choose_path has a valid tree to descend.
        while not self.root.is_leaf and len(self.root.entries) == 1:
            self.root = self.root.entries[0]
        if not self.root.is_leaf and not self.root.entries:
            self.root = Node(is_leaf=True)
        for entry in orphans:
            self._reinserted_levels = set()
            self._insert_entry(entry, 0)

    # ------------------------------------------------------------- query

    def window_query(
        self, low: Sequence[float], high: Sequence[float]
    ) -> List[LeafEntry]:
        """All entries inside the axis-aligned window ``[low, high]``."""
        window = MBR(low, high)
        results: List[LeafEntry] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.mbr is None or not node.mbr.intersects(window):
                continue
            if node.is_leaf:
                results.extend(
                    entry
                    for entry in node.entries
                    if window.contains_point(entry.point)
                )
            else:
                stack.extend(node.entries)
        return results

    def point_query(self, point: Sequence[float]) -> List[LeafEntry]:
        """All entries exactly at ``point``."""
        return self.window_query(point, point)

    def all_entries(self) -> List[LeafEntry]:
        """Every stored entry (left-to-right leaf order)."""
        return [entry for leaf in self.leaves() for entry in leaf.entries]

    # -------------------------------------------------------- invariants

    def check_invariants(self) -> None:
        """Raise AssertionError if structural invariants are violated.

        Checked: MBRs tight over children, leaf levels equal, node fill
        within bounds (root exempt; supernodes allowed above base
        capacity), size consistent.
        """
        leaf_depths = []

        def visit(node: Node, depth: int) -> int:
            if node is not self.root:
                assert len(node.entries) >= self.min_entries(node), (
                    f"underfull node: {len(node.entries)}"
                )
            assert len(node.entries) <= self.capacity(node), (
                f"overfull node: {len(node.entries)} > {self.capacity(node)}"
            )
            if node.is_leaf:
                leaf_depths.append(depth)
                if node.entries:
                    points = np.vstack([e.point for e in node.entries])
                    tight = MBR.from_points(points)
                    assert node.mbr == tight, "leaf MBR not tight"
                return len(node.entries)
            count = 0
            for child in node.entries:
                assert node.mbr.contains(child.mbr), "child MBR escapes parent"
                count += visit(child, depth + 1)
            tight = MBR.union_of(c.mbr for c in node.entries)
            assert node.mbr == tight, "directory MBR not tight"
            return count

        total = visit(self.root, 0) if self.size else 0
        assert total == self.size, f"size mismatch: {total} != {self.size}"
        assert len(set(leaf_depths)) <= 1, "leaves at differing depths"
