"""k-d tree with the Friedman/Bentley/Finkel NN algorithm [FBF 77].

Section 2 of the paper reviews the classic sequential NN algorithms; the
k-d tree of Friedman, Bentley and Finkel is the "more practical approach"
predating R-trees.  We implement it faithfully:

* build: recursive median split on the dimension of maximal spread
  ("optimized k-d tree"), leaf buckets of ``leaf_size`` points;
* search: depth-first descent to the query's bucket, then backtracking
  with the *bounds-overlap-ball* test (prune subtrees whose half-space is
  farther than the current k-th distance) and the *ball-within-bounds*
  termination test.

The FBF 77 analysis promises logarithmic expected time — in low
dimensions.  The ablation benchmark shows the same degeneration with
growing ``d`` that motivates the paper (visited buckets approach all of
them), reproducing the claim that NN search is "inherently hard" in high
dimensions for any partitioning method.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.index.knn import Neighbor, SearchStats, _CandidateSet

__all__ = ["KDTree"]


class _KDNode:
    """Internal node: split plane; leaf: a bucket of point indices."""

    __slots__ = ("axis", "value", "left", "right", "indices")

    def __init__(self, axis: int = -1, value: float = 0.0,
                 left: Optional[_KDNode] = None,
                 right: Optional[_KDNode] = None,
                 indices: Optional[np.ndarray] = None):
        self.axis = axis
        self.value = value
        self.left = left
        self.right = right
        self.indices = indices  # leaf only

    @property
    def is_leaf(self) -> bool:
        return self.indices is not None


class KDTree:
    """Optimized k-d tree over an ``(N, d)`` point array.

    Parameters
    ----------
    points:
        Data array; kept by reference (the tree stores indices).
    leaf_size:
        Bucket capacity of the leaves; [FBF 77]'s experiments use small
        buckets, and a leaf maps naturally onto one disk page.
    oids:
        Object ids, default ``0..N-1``.
    """

    def __init__(
        self,
        points: np.ndarray,
        leaf_size: int = 16,
        oids: Optional[Sequence[int]] = None,
    ):
        points = np.asarray(points, dtype=float)
        if points.ndim != 2:
            raise ValueError(f"points must be (N, d), got {points.shape}")
        if leaf_size < 1:
            raise ValueError(f"leaf_size must be >= 1, got {leaf_size}")
        self.points = points
        self.leaf_size = leaf_size
        if oids is None:
            oids = np.arange(len(points))
        self.oids = np.asarray(oids)
        if self.oids.shape != (len(points),):
            raise ValueError("oids must have one id per point")
        self.dimension = points.shape[1] if points.size else 0
        self.root = (
            self._build(np.arange(len(points))) if len(points) else None
        )

    def _build(self, indices: np.ndarray) -> _KDNode:
        if len(indices) <= self.leaf_size:
            return _KDNode(indices=indices)
        subset = self.points[indices]
        axis = int(np.argmax(subset.max(axis=0) - subset.min(axis=0)))
        order = indices[np.argsort(subset[:, axis], kind="stable")]
        middle = len(order) // 2
        value = float(self.points[order[middle], axis])
        return _KDNode(
            axis=axis,
            value=value,
            left=self._build(order[:middle]),
            right=self._build(order[middle:]),
        )

    # ------------------------------------------------------------ search

    def knn(
        self, query: Sequence[float], k: int = 1
    ) -> Tuple[List[Neighbor], SearchStats]:
        """k nearest neighbors; stats count visited leaf buckets as
        pages."""
        query = np.asarray(query, dtype=float)
        stats = SearchStats()
        candidates = _CandidateSet(k)
        if self.root is None:
            return [], stats

        def visit(node: _KDNode) -> None:
            if node.is_leaf:
                stats.node_accesses += 1
                stats.leaf_accesses += 1
                stats.page_accesses += 1
                subset = self.points[node.indices]
                deltas = subset - query
                sq = np.einsum("ij,ij->i", deltas, deltas)
                stats.distance_computations += len(subset)
                for distance, index in zip(sq, node.indices):
                    candidates.offer(
                        float(distance), int(self.oids[index]),
                        self.points[index],
                    )
                return
            stats.node_accesses += 1
            delta = query[node.axis] - node.value
            near, far = (
                (node.left, node.right) if delta < 0
                else (node.right, node.left)
            )
            visit(near)
            # Bounds-overlap-ball: the far half-space starts at the split
            # plane; it can only matter if the plane is within the current
            # k-th distance.
            if delta * delta <= candidates.bound:
                visit(far)

        visit(self.root)
        return candidates.neighbors(), stats

    def __len__(self) -> int:
        return len(self.points)

    def num_leaves(self) -> int:
        """Total leaf buckets (pages) of the tree."""
        if self.root is None:
            return 0
        count = 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                count += 1
            else:
                stack.extend((node.left, node.right))
        return count
