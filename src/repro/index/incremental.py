"""Incremental nearest-neighbor ranking (full HS 95 algorithm).

The Hjaltason & Samet algorithm is naturally *incremental*: a single
priority queue interleaves tree nodes (keyed by ``mindist``) and data
points (keyed by their exact distance); popping the queue yields the next
nearest object without knowing ``k`` in advance.  The paper's Section 2
discusses this "ranking" formulation; it matters in practice whenever the
caller filters results and cannot bound ``k`` up front.

:func:`incremental_nearest` exposes it as a generator; consuming ``k``
items reads exactly the pages a ``k``-NN query would read.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Iterator, Optional, Sequence

import numpy as np

from repro.index.knn import Neighbor, SearchStats, _leaf_distances
from repro.index.node import Node
from repro.index.rstar import RStarTree

__all__ = ["incremental_nearest"]

#: Queue item kinds; points sort before nodes at equal distance so an
#: object is reported before a page that could only contain ties.
_POINT, _NODE = 0, 1


def incremental_nearest(
    tree: RStarTree,
    query: Sequence[float],
    stats: Optional[SearchStats] = None,
) -> Iterator[Neighbor]:
    """Yield the tree's points in increasing distance from ``query``.

    Parameters
    ----------
    tree:
        Any R\\*/X-tree.
    query:
        Query point of the tree's dimensionality.
    stats:
        Optional :class:`~repro.index.knn.SearchStats` that accumulates
        page accesses as the iterator is consumed (the cost is incurred
        lazily — stopping early stops the I/O).

    Yields
    ------
    Neighbor
        Next-nearest point, with exact Euclidean distance.
    """
    query = np.asarray(query, dtype=float)
    if stats is None:
        stats = SearchStats()
    if tree.size == 0:
        return
    tiebreak = itertools.count()
    # Heap entries: (sq_distance, kind, tiebreak, payload)
    heap: list = [(0.0, _NODE, next(tiebreak), tree.root)]
    while heap:
        sq_distance, kind, _, payload = heapq.heappop(heap)
        if kind == _POINT:
            entry = payload
            yield Neighbor(float(np.sqrt(sq_distance)), entry.oid,
                           entry.point)
            continue
        node: Node = payload
        stats.record(node)
        if node.is_leaf:
            if node.entries:
                sq, entries = _leaf_distances(node, query, stats)
                for distance, entry in zip(sq, entries):
                    heapq.heappush(
                        heap,
                        (float(distance), _POINT, next(tiebreak), entry),
                    )
        else:
            for child in node.entries:
                heapq.heappush(
                    heap,
                    (
                        child.mbr.mindist(query),
                        _NODE,
                        next(tiebreak),
                        child,
                    ),
                )
