"""Sort-Tile-Recursive (STR) bulk loading for R\\*/X-trees.

Building an index by repeated insertion is O(N log N) with large constants;
the experiments load 10^4-10^5 points per disk, so the benchmark harness
bulk-loads.  STR packs points into leaves by recursively slicing the space
into slabs (sorting by one dimension per recursion level), then builds the
directory bottom-up by applying the same packing to node centers.

The resulting tree satisfies all structural invariants of the dynamic tree
(checked by the tests) and remains fully updatable afterwards.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Type

import numpy as np

from repro.index.node import LeafEntry, Node
from repro.index.rstar import RStarTree
from repro.index.xtree import XTree

__all__ = ["str_chunks", "bulk_load"]


def str_chunks(
    points: np.ndarray, capacity: int, start_dim: int = 0
) -> List[np.ndarray]:
    """Partition point indices into STR tiles of at most ``capacity``.

    Returns a list of index arrays; tiles are spatially coherent and sized
    between roughly ``capacity / 2`` and ``capacity``, so a downstream node
    fill factor of >= 40% holds for any ``capacity >= 4``.
    """
    points = np.asarray(points, dtype=float)
    if points.ndim != 2:
        raise ValueError(f"points must be (N, d), got shape {points.shape}")
    if capacity < 1:
        raise ValueError(f"capacity must be >= 1, got {capacity}")
    num_points, dimension = points.shape

    def recurse(indices: np.ndarray, dim: int) -> List[np.ndarray]:
        if len(indices) <= capacity:
            return [indices]
        pages = math.ceil(len(indices) / capacity)
        order = indices[np.argsort(points[indices, dim], kind="stable")]
        if dim >= dimension - 1:
            # Last dimension: slice into near-equal runs of <= capacity.
            return [chunk for chunk in np.array_split(order, pages)]
        dims_left = dimension - dim
        slabs = math.ceil(pages ** (1.0 / dims_left))
        result: List[np.ndarray] = []
        for slab in np.array_split(order, slabs):
            if len(slab):
                result.extend(recurse(slab, dim + 1))
        return result

    return recurse(np.arange(num_points), start_dim % dimension)


def bulk_load(
    points: np.ndarray,
    oids: Optional[Sequence[int]] = None,
    tree_cls: Type[RStarTree] = XTree,
    fill: float = 0.85,
    **tree_kwargs,
) -> RStarTree:
    """Build a packed tree over ``points`` with STR.

    Parameters
    ----------
    points:
        ``(N, d)`` data array.
    oids:
        Object ids; default ``0..N-1``.
    tree_cls:
        :class:`~repro.index.xtree.XTree` (default) or
        :class:`~repro.index.rstar.RStarTree`.
    fill:
        Target node fill factor; must stay >= 0.8 so the packed nodes
        respect the trees' 40% minimum fill.
    tree_kwargs:
        Forwarded to the tree constructor (page size, capacities, ...).
    """
    points = np.asarray(points, dtype=float)
    if points.ndim != 2:
        raise ValueError(f"points must be (N, d), got shape {points.shape}")
    if not 0.8 <= fill <= 1.0:
        raise ValueError(f"fill must be in [0.8, 1.0], got {fill}")
    num_points, dimension = points.shape
    tree = tree_cls(dimension, **tree_kwargs)
    if num_points == 0:
        return tree
    if oids is None:
        oids = np.arange(num_points)
    oids = np.asarray(oids)
    if oids.shape != (num_points,):
        raise ValueError(
            f"oids must have shape ({num_points},), got {oids.shape}"
        )

    leaf_target = max(4, int(tree.leaf_cap * fill))
    tiles = str_chunks(points, leaf_target)
    level: List[Node] = [
        Node(
            is_leaf=True,
            entries=[LeafEntry(points[i], int(oids[i])) for i in tile],
        )
        for tile in tiles
    ]

    dir_target = max(4, int(tree.dir_cap * fill))
    while len(level) > 1:
        centers = np.vstack([node.mbr.center for node in level])
        groups = str_chunks(centers, dir_target)
        level = [
            Node(is_leaf=False, entries=[level[i] for i in group])
            for group in groups
        ]

    tree.root = level[0]
    tree.size = num_points
    return tree
