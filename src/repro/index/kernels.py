"""Vectorized traversal kernels over contiguous per-node entry arrays.

The scalar hot path of every kNN engine computes ``MBR.mindist`` one
child at a time and re-stacks leaf points on every visit — a Python loop
per node.  This module replaces both with single NumPy calls over
*cached contiguous arrays*:

* :func:`child_bounds` — stacked ``(C, d)`` ``low``/``high`` matrices of
  a directory node's children, built lazily on first visit and
  invalidated by :meth:`~repro.index.node.Node.recompute_mbr` /
  :meth:`~repro.index.node.Node.extend_mbr` (every entry mutation in the
  tree code runs through one of the two);
* :func:`leaf_points` — the stacked ``(N, d)`` point matrix of a leaf,
  same lifecycle;
* :func:`child_mindists` / :func:`child_minmaxdists` — one call yields
  the pruning bound for *all* children of a node;
* :func:`offer_leaf` — fused leaf kernel: ranking keys, bound filtering,
  and bulk candidate insertion without a per-entry Python loop;
* :func:`child_intersects` / :func:`leaf_window_mask` — batched window
  predicates for range/partial-match queries.

**Exactness contract.**  Every kernel reproduces the scalar path
bit-for-bit: same neighbor sets, same pruning decisions, and therefore
the same page/disk/cache/``distance_computations`` counters (the oracle
suite in ``tests/test_kernels_oracle.py`` asserts this with no
float-tolerance waivers).  This works because the scalar reductions in
:mod:`repro.index.mbr` / :mod:`repro.index.metrics` use
``np.add.reduce``, whose row-wise 2-D form is bit-identical to the 1-D
case (a BLAS dot product is not).

**Fallback.**  Setting the environment variable ``REPRO_SCALAR_KERNELS``
to a non-empty value other than ``0`` (or passing ``use_kernels=False``
to the engines) selects the original scalar path; see
``docs/performance.md``.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Optional, Tuple

import numpy as np

from repro.index.metrics import Euclidean, Metric

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.index.knn import SearchStats, _CandidateSet
    from repro.index.node import Node

__all__ = [
    "SCALAR_ENV",
    "kernels_enabled",
    "child_bounds",
    "leaf_points",
    "child_mindists",
    "child_minmaxdists",
    "child_intersects",
    "leaf_window_mask",
    "offer_leaf",
    "offer_payload",
]

#: Environment variable selecting the scalar fallback path.
SCALAR_ENV = "REPRO_SCALAR_KERNELS"

_EUCLIDEAN = Euclidean()

#: Tags distinguishing the two cache layouts sharing ``_kernel_cache``.
_DIR_CACHE = "dir"
_LEAF_CACHE = "leaf"


def kernels_enabled(override: Optional[bool] = None) -> bool:
    """Whether the vectorized kernels are active.

    ``override`` (an engine's ``use_kernels`` argument) wins when given;
    otherwise the :data:`SCALAR_ENV` environment variable decides —
    unset, empty, or ``"0"`` means kernels on, anything else selects the
    scalar fallback.
    """
    if override is not None:
        return override
    return os.environ.get(SCALAR_ENV, "").strip() in ("", "0")


def child_bounds(node: "Node") -> Tuple[np.ndarray, np.ndarray]:
    """Stacked ``(C, d)`` ``low``/``high`` matrices of a directory node.

    Built lazily on first use and memoized on the node; the tree code
    invalidates the memo whenever the node's entries or any child MBR
    change (both funnel through ``recompute_mbr`` / ``extend_mbr``).
    """
    cache = node._kernel_cache
    count = len(node.entries)
    if (
        cache is not None
        and cache[0] == _DIR_CACHE
        and cache[1] == count
    ):
        return cache[2], cache[3]
    lows = np.vstack([child.mbr.low for child in node.entries])
    highs = np.vstack([child.mbr.high for child in node.entries])
    node._kernel_cache = (_DIR_CACHE, count, lows, highs)
    return lows, highs


def leaf_points(node: "Node") -> np.ndarray:
    """The stacked ``(N, d)`` point matrix of a leaf node (memoized).

    Identical (values and C-contiguous layout) to the ``np.vstack`` the
    scalar ``_leaf_distances`` performs on every visit, so
    ``metric.point_keys`` returns bit-identical ranking keys.
    """
    cache = node._kernel_cache
    count = len(node.entries)
    if (
        cache is not None
        and cache[0] == _LEAF_CACHE
        and cache[1] == count
    ):
        return cache[2]
    points = np.vstack([entry.point for entry in node.entries])
    node._kernel_cache = (_LEAF_CACHE, count, points)
    return points


def child_mindists(
    node: "Node", query: np.ndarray, metric: Metric = _EUCLIDEAN
) -> np.ndarray:
    """``metric.mindist`` of the query to every child of ``node``.

    One batched call instead of ``C`` scalar ones; entry ``i`` equals
    ``metric.mindist(node.entries[i].mbr, query)`` bit-for-bit.
    """
    lows, highs = child_bounds(node)
    return metric.mindist_many(lows, highs, query)


def child_minmaxdists(node: "Node", query: np.ndarray) -> np.ndarray:
    """Squared RKV 95 ``minmaxdist`` bound for every child of ``node``.

    Entry ``i`` equals ``node.entries[i].mbr.minmaxdist(query)``
    bit-for-bit (same elementwise operations, same ``add.reduce``).
    """
    lows, highs = child_bounds(node)
    centers = (lows + highs) / 2.0
    near_face = np.where(query <= centers, lows, highs)
    far_face = np.where(query >= centers, lows, highs)
    near_term = (query - near_face) ** 2
    far_term = (query - far_face) ** 2
    total_far = np.add.reduce(far_term, axis=1, keepdims=True)
    return (near_term + (total_far - far_term)).min(axis=1)


def child_intersects(
    node: "Node", low: np.ndarray, high: np.ndarray
) -> np.ndarray:
    """Boolean mask: which children of ``node`` intersect ``[low, high]``.

    Entry ``i`` equals ``node.entries[i].mbr.intersects(window)`` (pure
    comparisons — exact by construction).
    """
    lows, highs = child_bounds(node)
    return (lows <= high).all(axis=1) & (low <= highs).all(axis=1)


def leaf_window_mask(
    node: "Node", low: np.ndarray, high: np.ndarray
) -> np.ndarray:
    """Boolean mask: which entries of leaf ``node`` lie in ``[low, high]``.

    Entry ``i`` equals ``window.contains_point(entries[i].point)``.
    """
    points = leaf_points(node)
    return (low <= points).all(axis=1) & (points <= high).all(axis=1)


def offer_leaf(
    candidates: "_CandidateSet",
    node: "Node",
    query: np.ndarray,
    stats: "SearchStats",
    metric: Metric = _EUCLIDEAN,
) -> None:
    """Fused leaf kernel: keys + bound filter + bulk candidate insertion.

    Equivalent to the scalar ``_leaf_distances`` + per-entry
    ``_CandidateSet.offer`` loop: charges ``len(entries)`` distance
    computations and leaves ``candidates`` in exactly the state the
    ordered scalar offers would (see ``_CandidateSet.offer_many``).
    """
    points = leaf_points(node)
    keys = metric.point_keys(points, query)
    stats.distance_computations += len(node.entries)
    candidates.offer_many(keys, node.entries)


def offer_payload(
    candidates: "_CandidateSet",
    points: np.ndarray,
    oids: np.ndarray,
    query: np.ndarray,
    stats: "SearchStats",
    metric: Metric = _EUCLIDEAN,
) -> None:
    """Leaf kernel over a raw page payload (out-of-core batch path).

    The mmap store serves a page as ``(points, oids)`` arrays rather
    than :class:`~repro.index.node.LeafEntry` objects; this scores and
    offers them with the same arithmetic as :func:`offer_leaf` —
    ``metric.point_keys`` over the contiguous point matrix, one
    ``distance_computations`` charge per entry, ordered bulk insertion
    — so in-memory and mmap-backed engines return bit-identical
    results and counters.
    """
    keys = metric.point_keys(points, query)
    stats.distance_computations += len(oids)
    candidates.offer_many_arrays(keys, oids, points)
