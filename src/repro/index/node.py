"""Tree node and entry structures shared by the R\\*-tree and X-tree.

A node corresponds to one disk page (the paper uses 4 KB pages).  X-tree
*supernodes* span several contiguous pages; their width in pages is the
node's ``blocks`` attribute and is charged accordingly by the I/O
accounting.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set, Union

import numpy as np

from repro.index.mbr import MBR

__all__ = ["LeafEntry", "Node", "leaf_capacity", "directory_capacity"]

#: Bytes per disk page, as in the paper's experiments.
DEFAULT_PAGE_BYTES = 4096

#: Bytes per float coordinate on disk.
_COORD_BYTES = 8
#: Bytes for an object identifier / child pointer.
_POINTER_BYTES = 8


def leaf_capacity(dimension: int, page_bytes: int = DEFAULT_PAGE_BYTES) -> int:
    """Number of point entries fitting one leaf page.

    A leaf entry stores ``d`` coordinates plus an object id.
    """
    entry_bytes = dimension * _COORD_BYTES + _POINTER_BYTES
    return max(4, page_bytes // entry_bytes)


def directory_capacity(
    dimension: int, page_bytes: int = DEFAULT_PAGE_BYTES
) -> int:
    """Number of child entries fitting one directory page.

    A directory entry stores an MBR (2d coordinates) plus a child pointer.
    """
    entry_bytes = 2 * dimension * _COORD_BYTES + _POINTER_BYTES
    return max(4, page_bytes // entry_bytes)


class LeafEntry:
    """A data point plus its object identifier."""

    __slots__ = ("point", "oid")

    def __init__(self, point: np.ndarray, oid: int):
        self.point = np.asarray(point, dtype=float)
        self.oid = oid

    @property
    def mbr(self) -> MBR:
        """Degenerate MBR of the point (lets split code treat entries
        uniformly)."""
        return MBR.from_point(self.point)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LeafEntry(oid={self.oid}, point={self.point.tolist()})"


class Node:
    """One page (or supernode) of the tree.

    Parameters
    ----------
    is_leaf:
        Leaves hold :class:`LeafEntry` objects; directory nodes hold child
        :class:`Node` objects.
    blocks:
        Width of the node in pages; ``> 1`` marks an X-tree supernode.
    split_history:
        Dimensions along which this subtree has been split — consulted by
        the X-tree's overlap-minimal split.
    """

    __slots__ = (
        "is_leaf", "entries", "mbr", "blocks", "split_history",
        "_kernel_cache",
    )

    def __init__(
        self,
        is_leaf: bool,
        entries: Optional[List[Union[LeafEntry, "Node"]]] = None,
        blocks: int = 1,
        split_history: Optional[Set[int]] = None,
    ):
        self.is_leaf = is_leaf
        self.entries: List[Union[LeafEntry, Node]] = list(entries or [])
        self.blocks = blocks
        self.split_history: Set[int] = set(split_history or ())
        self.mbr: Optional[MBR] = None
        #: Lazily built contiguous entry arrays (see
        #: :mod:`repro.index.kernels`); dropped whenever the node's
        #: geometry changes.  Every entry mutation in the tree code runs
        #: through :meth:`recompute_mbr` or :meth:`extend_mbr`, so those
        #: two methods are the invalidation points.
        self._kernel_cache: Optional[tuple] = None
        if self.entries:
            self.recompute_mbr()

    # ---------------------------------------------------------- geometry

    def recompute_mbr(self) -> None:
        """Recompute the tight MBR from the current entries."""
        self._kernel_cache = None
        if not self.entries:
            self.mbr = None
            return
        if self.is_leaf:
            points = np.vstack([entry.point for entry in self.entries])
            self.mbr = MBR.from_points(points)
        else:
            self.mbr = MBR.union_of(child.mbr for child in self.entries)

    def extend_mbr(self, entry_mbr: MBR) -> None:
        """Grow the node MBR to cover a newly added entry."""
        self._kernel_cache = None
        if self.mbr is None:
            self.mbr = entry_mbr.copy()
        else:
            self.mbr.enlarge(entry_mbr)

    # --------------------------------------------------------- structure

    def __len__(self) -> int:
        return len(self.entries)

    def add(self, entry: Union[LeafEntry, "Node"]) -> None:
        self.entries.append(entry)
        self.extend_mbr(entry.mbr)

    def iter_leaves(self) -> Sequence["Node"]:
        """All leaf nodes of the subtree, left to right."""
        if self.is_leaf:
            return [self]
        leaves: List[Node] = []
        stack: List[Node] = [self]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                leaves.append(node)
            else:
                stack.extend(reversed(node.entries))
        return leaves

    def height(self) -> int:
        """Levels below (and including) this node; a leaf has height 1."""
        node, levels = self, 1
        while not node.is_leaf:
            node = node.entries[0]
            levels += 1
        return levels

    def count_points(self) -> int:
        """Number of data points stored in the subtree."""
        if self.is_leaf:
            return len(self.entries)
        return sum(child.count_points() for child in self.entries)

    def count_pages(self) -> int:
        """Disk pages occupied by the subtree (supernodes count as
        ``blocks`` pages)."""
        if self.is_leaf:
            return self.blocks
        return self.blocks + sum(child.count_pages() for child in self.entries)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "leaf" if self.is_leaf else "dir"
        extra = f", blocks={self.blocks}" if self.blocks > 1 else ""
        return f"Node({kind}, entries={len(self.entries)}{extra})"
