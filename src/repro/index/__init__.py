"""High-dimensional index substrate: R\\*-tree, X-tree, kNN, bulk loading."""

from __future__ import annotations

from repro.index.bulk import bulk_load, str_chunks
from repro.index.grid import GridIndex
from repro.index.kdtree import KDTree
from repro.index.incremental import incremental_nearest
from repro.index.knn import (
    Neighbor,
    SearchStats,
    knn_best_first,
    knn_branch_and_bound,
    knn_linear_scan,
    pages_intersecting_radius,
)
from repro.index.mbr import MBR
from repro.index.metrics import Euclidean, LpMetric, Metric, WeightedEuclidean
from repro.index.node import LeafEntry, Node, directory_capacity, leaf_capacity
from repro.index.proximity_graph import KNNGraphIndex
from repro.index.rstar import RStarTree
from repro.index.xtree import XTree

__all__ = [
    "Euclidean",
    "GridIndex",
    "KDTree",
    "KNNGraphIndex",
    "MBR",
    "LeafEntry",
    "LpMetric",
    "Metric",
    "WeightedEuclidean",
    "Neighbor",
    "Node",
    "RStarTree",
    "SearchStats",
    "XTree",
    "bulk_load",
    "directory_capacity",
    "knn_best_first",
    "knn_branch_and_bound",
    "incremental_nearest",
    "knn_linear_scan",
    "leaf_capacity",
    "pages_intersecting_radius",
    "str_chunks",
]
