"""Minimum bounding rectangles (MBRs) and the kNN distance metrics.

The R\\*-tree/X-tree substrate stores d-dimensional hyperrectangles.  Besides
the usual union/area/margin/overlap operations needed by insertion and
splitting, this module implements the two distance bounds that drive
nearest-neighbor tree traversal:

* :meth:`MBR.mindist` — minimal possible distance from a query point to any
  point inside the rectangle (Hjaltason & Samet [HS 95] ordering);
* :meth:`MBR.minmaxdist` — maximal possible distance to the *nearest* data
  point guaranteed to exist inside the rectangle (Roussopoulos et al.
  [RKV 95] pruning bound).

Distances are squared Euclidean throughout; comparisons are monotone under
the square, and skipping the square root keeps the hot path cheap.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

__all__ = ["MBR"]


class MBR:
    """A d-dimensional closed hyperrectangle ``[low, high]``.

    Instances are mutable on purpose: tree nodes extend their MBR in place
    during insertion.  ``low`` and ``high`` are float ndarrays of shape
    ``(d,)`` with ``low <= high`` elementwise.
    """

    __slots__ = ("low", "high")

    def __init__(self, low: Sequence[float], high: Sequence[float]):
        self.low = np.asarray(low, dtype=float).copy()
        self.high = np.asarray(high, dtype=float).copy()
        if self.low.shape != self.high.shape or self.low.ndim != 1:
            raise ValueError(
                f"low/high must be 1-D arrays of equal shape, got "
                f"{self.low.shape} and {self.high.shape}"
            )
        if (self.low > self.high).any():
            raise ValueError("MBR requires low <= high in every dimension")

    # ------------------------------------------------------------ factory

    @classmethod
    def from_point(cls, point: Sequence[float]) -> "MBR":
        """Degenerate MBR covering a single point."""
        return cls(point, point)

    @classmethod
    def from_points(cls, points: np.ndarray) -> "MBR":
        """Tight MBR of an ``(N, d)`` point array (N >= 1)."""
        points = np.asarray(points, dtype=float)
        if points.ndim != 2 or points.shape[0] == 0:
            raise ValueError(
                f"points must be a non-empty (N, d) array, got {points.shape}"
            )
        return cls(points.min(axis=0), points.max(axis=0))

    @classmethod
    def union_of(cls, rectangles: Iterable["MBR"]) -> "MBR":
        """Tight MBR covering all given rectangles (at least one)."""
        rectangles = list(rectangles)
        if not rectangles:
            raise ValueError("union_of requires at least one rectangle")
        low = np.min([r.low for r in rectangles], axis=0)
        high = np.max([r.high for r in rectangles], axis=0)
        return cls(low, high)

    # ---------------------------------------------------------- geometry

    @property
    def dimension(self) -> int:
        return self.low.shape[0]

    @property
    def center(self) -> np.ndarray:
        return (self.low + self.high) / 2.0

    def copy(self) -> "MBR":
        return MBR(self.low, self.high)

    def area(self) -> float:
        """Volume of the hyperrectangle."""
        return float(np.prod(self.high - self.low))

    def margin(self) -> float:
        """Sum of edge lengths (the R\\* split's surrogate for perimeter)."""
        return float((self.high - self.low).sum())

    def union(self, other: "MBR") -> "MBR":
        return MBR(
            np.minimum(self.low, other.low), np.maximum(self.high, other.high)
        )

    def enlarge(self, other: "MBR") -> None:
        """Grow this MBR in place to cover ``other``."""
        np.minimum(self.low, other.low, out=self.low)
        np.maximum(self.high, other.high, out=self.high)

    def enlargement(self, other: "MBR") -> float:
        """Area increase needed to absorb ``other``."""
        return self.union(other).area() - self.area()

    def intersects(self, other: "MBR") -> bool:
        return bool(
            (self.low <= other.high).all() and (other.low <= self.high).all()
        )

    def overlap(self, other: "MBR") -> float:
        """Volume of the intersection (0.0 when disjoint)."""
        widths = np.minimum(self.high, other.high) - np.maximum(
            self.low, other.low
        )
        if (widths < 0).any():
            return 0.0
        return float(np.prod(widths))

    def contains_point(self, point: Sequence[float]) -> bool:
        point = np.asarray(point, dtype=float)
        return bool((self.low <= point).all() and (point <= self.high).all())

    def contains(self, other: "MBR") -> bool:
        return bool(
            (self.low <= other.low).all() and (other.high <= self.high).all()
        )

    # ----------------------------------------------------- kNN distances

    def mindist(self, query: np.ndarray) -> float:
        """Squared distance from ``query`` to the nearest point of the MBR.

        Zero when the query lies inside.  This is the priority used by the
        HS 95 incremental best-first traversal.

        The reduction is ``np.add.reduce`` rather than a BLAS dot product:
        row-wise ``add.reduce`` over a 2-D batch is bit-identical to the
        1-D case, which is what lets the vectorized per-node kernels
        (:mod:`repro.index.kernels`) reproduce this value exactly — BLAS
        ``gap @ gap`` rounds differently from any batched reduction.
        """
        below = self.low - query
        above = query - self.high
        gap = np.maximum(np.maximum(below, above), 0.0)
        return float(np.add.reduce(gap * gap))

    def minmaxdist(self, query: np.ndarray) -> float:
        """Squared RKV 95 bound: the rectangle is *guaranteed* to contain a
        data point within this distance of ``query``.

        For every dimension ``k``, some face of the rectangle orthogonal to
        ``k`` must touch a data point; minimize over ``k`` the worst case of
        staying near the closer ``k``-face while being farthest in all other
        dimensions.
        """
        query = np.asarray(query, dtype=float)
        center = self.center
        # rm[k]: the k-coordinate of the face boundary closer to the query.
        rm = np.where(query <= center, self.low, self.high)
        # rM[k]: the k-coordinate farther from the query.
        r_m = np.where(query >= center, self.low, self.high)
        near_term = (query - rm) ** 2
        far_term = (query - r_m) ** 2
        total_far = far_term.sum()
        candidates = near_term + (total_far - far_term)
        return float(candidates.min())

    def maxdist(self, query: np.ndarray) -> float:
        """Squared distance from ``query`` to the farthest corner."""
        gap = np.maximum(np.abs(query - self.low), np.abs(query - self.high))
        return float(gap @ gap)

    # -------------------------------------------------------------- misc

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MBR):
            return NotImplemented
        return bool(
            np.array_equal(self.low, other.low)
            and np.array_equal(self.high, other.high)
        )

    def __hash__(self):  # noqa: D105 - mutable, not hashable
        raise TypeError("MBR is mutable and therefore unhashable")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MBR(low={self.low.tolist()}, high={self.high.tolist()})"
