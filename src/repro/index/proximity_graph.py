"""Graph-based nearest-neighbor search (the second family of Section 2).

The paper's literature review splits sequential NN algorithms into
*partitioning* algorithms (Welch's grid, k-d trees, R-trees — all
implemented in this package) and *graph-based* algorithms, which
"precalculate some nearest-neighbors of points, store the distances in a
graph, and use the precalculated information for a more efficient search"
(RNG* [Ary 95], Voronoi-based methods [PS 85]).

:class:`KNNGraphIndex` implements that family in its modern minimal form:
a k-NN proximity graph built at load time, searched greedily with a
best-first beam from random entry points.  The search is *approximate* —
the recall/work trade-off is controlled by the beam width — which is
exactly the property that kept graph methods out of the paper's
exact-search setting and is quantified by the tests.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.index.knn import Neighbor, SearchStats

__all__ = ["KNNGraphIndex"]


class KNNGraphIndex:
    """k-NN proximity graph with greedy best-first (beam) search.

    Parameters
    ----------
    points:
        ``(N, d)`` data array.
    degree:
        Out-degree of the proximity graph (neighbors precalculated per
        point).
    seed:
        Seed for the search entry points.
    oids:
        Object ids, default ``0..N-1``.

    Notes
    -----
    Construction computes exact k-NN lists by blocked brute force —
    O(N²·d) work — so keep N moderate (tens of thousands); the paper's
    point that precalculation is expensive stands.
    """

    def __init__(
        self,
        points: np.ndarray,
        degree: int = 8,
        seed: int = 0,
        oids: Optional[Sequence[int]] = None,
    ):
        points = np.asarray(points, dtype=float)
        if points.ndim != 2:
            raise ValueError(f"points must be (N, d), got {points.shape}")
        if degree < 1:
            raise ValueError(f"degree must be >= 1, got {degree}")
        self.points = points
        self.degree = min(degree, max(1, len(points) - 1))
        self._rng = np.random.default_rng(seed)
        if oids is None:
            oids = np.arange(len(points))
        self.oids = np.asarray(oids)
        self.neighbors = self._build_graph() if len(points) else None

    def _build_graph(self) -> np.ndarray:
        """Exact k-NN adjacency lists, computed in blocks."""
        count = len(self.points)
        adjacency = np.empty((count, self.degree), dtype=np.int64)
        block = max(1, int(2e7 // max(count, 1)))
        for start in range(0, count, block):
            stop = min(start + block, count)
            deltas = self.points[start:stop, None, :] - self.points[None, :, :]
            sq = np.einsum("ijk,ijk->ij", deltas, deltas)
            for row, index in enumerate(range(start, stop)):
                sq[row, index] = np.inf  # exclude self
            order = np.argpartition(sq, self.degree - 1, axis=1)
            adjacency[start:stop] = order[:, : self.degree]
        return adjacency

    def knn(
        self,
        query: Sequence[float],
        k: int = 1,
        beam_width: int = 32,
        num_entries: int = 4,
    ) -> Tuple[List[Neighbor], SearchStats]:
        """Approximate kNN by greedy graph traversal.

        ``beam_width`` bounds the candidate pool (larger = higher recall,
        more distance computations); ``num_entries`` random starting
        vertices guard against disconnected regions.
        """
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if beam_width < k:
            beam_width = k
        query = np.asarray(query, dtype=float)
        stats = SearchStats()
        if self.neighbors is None:
            return [], stats
        count = len(self.points)
        entries = self._rng.choice(count, min(num_entries, count),
                                   replace=False)

        def sq_distance(index: int) -> float:
            delta = self.points[index] - query
            stats.distance_computations += 1
            return float(delta @ delta)

        visited = set()
        # Candidate frontier (min-heap by distance) and result pool
        # (max-heap of the best beam_width seen).
        frontier: List[Tuple[float, int]] = []
        pool: List[Tuple[float, int]] = []
        for entry in entries:
            entry = int(entry)
            if entry in visited:
                continue
            visited.add(entry)
            distance = sq_distance(entry)
            heapq.heappush(frontier, (distance, entry))
            heapq.heappush(pool, (-distance, entry))
        while frontier:
            distance, vertex = heapq.heappop(frontier)
            if len(pool) >= beam_width and distance > -pool[0][0]:
                break  # the nearest unexpanded vertex cannot improve
            stats.node_accesses += 1  # one adjacency-list fetch
            for neighbor in self.neighbors[vertex]:
                neighbor = int(neighbor)
                if neighbor in visited:
                    continue
                visited.add(neighbor)
                neighbor_distance = sq_distance(neighbor)
                if (
                    len(pool) < beam_width
                    or neighbor_distance < -pool[0][0]
                ):
                    heapq.heappush(frontier, (neighbor_distance, neighbor))
                    heapq.heappush(pool, (-neighbor_distance, neighbor))
                    if len(pool) > beam_width:
                        heapq.heappop(pool)
        best = sorted((-key, index) for key, index in pool)[:k]
        return (
            [
                Neighbor(float(np.sqrt(sq)), int(self.oids[i]),
                         self.points[i])
                for sq, i in best
            ],
            stats,
        )

    def recall(
        self,
        queries: np.ndarray,
        k: int = 10,
        beam_width: int = 32,
    ) -> float:
        """Fraction of true k-NN found, averaged over a query batch."""
        from repro.index.knn import knn_linear_scan

        queries = np.atleast_2d(np.asarray(queries, dtype=float))
        hits = total = 0
        for query in queries:
            truth = {n.oid for n in knn_linear_scan(self.points, query, k,
                                                    oids=self.oids)}
            found = {n.oid for n in self.knn(query, k, beam_width)[0]}
            hits += len(truth & found)
            total += len(truth)
        return hits / total if total else 1.0

    def __len__(self) -> int:
        return len(self.points)
