"""Distance metrics for similarity search.

The paper's group emphasized that similarity is user- and
application-defined (cf. their "user-adaptable similarity search" line of
work): image retrieval may weight color bins differently, and robust
matching may prefer L1 over L2.  This module generalizes the kNN machinery
to any metric that can provide

* a per-point *ranking key* (any monotone transform of the distance —
  squared Euclidean for L2, the p-th power for Lp — so hot loops skip
  roots), and
* a lower bound of that key over an MBR (``mindist``), which is what makes
  tree pruning correct.

Pass an instance to ``knn_best_first(..., metric=...)`` /
``knn_branch_and_bound`` / ``knn_linear_scan``.
"""

from __future__ import annotations

import abc
import math
from typing import Sequence

import numpy as np

from repro.index.mbr import MBR

__all__ = ["Metric", "Euclidean", "WeightedEuclidean", "LpMetric"]


class Metric(abc.ABC):
    """A distance with tree-pruning support.

    Implementations must keep the three methods consistent: for any point
    ``x`` inside ``box``, ``mindist(box, q) <= point_keys([x], q)[0]`` and
    ``key_to_distance`` must be monotone.
    """

    @abc.abstractmethod
    def point_keys(self, points: np.ndarray, query: np.ndarray) -> np.ndarray:
        """Ranking keys of ``(N, d)`` points against the query."""

    @abc.abstractmethod
    def mindist(self, box: MBR, query: np.ndarray) -> float:
        """Lower bound of the ranking key over all points in ``box``."""

    def mindist_many(
        self, lows: np.ndarray, highs: np.ndarray, query: np.ndarray
    ) -> np.ndarray:
        """``mindist`` for a batch of boxes given as ``(N, d)`` bound arrays.

        Row ``i`` must equal ``mindist(MBR(lows[i], highs[i]), query)``
        bit-for-bit — the vectorized traversal kernels
        (:mod:`repro.index.kernels`) rely on exact agreement so that
        pruning decisions, and therefore page counts, match the scalar
        path.  The default implementation delegates to :meth:`mindist`
        per row (exact by construction, but slow); the built-in metrics
        override it with genuinely batched code.
        """
        return np.array(
            [
                self.mindist(MBR(low, high), query)
                for low, high in zip(lows, highs)
            ],
            dtype=float,
        )

    @abc.abstractmethod
    def key_to_distance(self, key: float) -> float:
        """Convert a ranking key back to the actual distance."""

    def distance(self, a: Sequence[float], b: Sequence[float]) -> float:
        """Actual distance between two points."""
        a = np.asarray(a, dtype=float).reshape(1, -1)
        b = np.asarray(b, dtype=float)
        return self.key_to_distance(float(self.point_keys(a, b)[0]))


class Euclidean(Metric):
    """Plain L2; keys are squared distances (the library default)."""

    def point_keys(self, points: np.ndarray, query: np.ndarray) -> np.ndarray:
        deltas = points - query
        return np.einsum("ij,ij->i", deltas, deltas)

    def mindist(self, box: MBR, query: np.ndarray) -> float:
        return box.mindist(query)

    def mindist_many(
        self, lows: np.ndarray, highs: np.ndarray, query: np.ndarray
    ) -> np.ndarray:
        gap = np.maximum(np.maximum(lows - query, query - highs), 0.0)
        return np.add.reduce(gap * gap, axis=1)

    def key_to_distance(self, key: float) -> float:
        return math.sqrt(key)


class WeightedEuclidean(Metric):
    """Diagonal-quadratic-form distance ``sqrt(sum w_i (a_i - b_i)^2)``.

    The standard "user preference" similarity: a weight per feature
    dimension (e.g., hue mattering more than brightness).
    """

    def __init__(self, weights: Sequence[float]):
        self.weights = np.asarray(weights, dtype=float)
        if self.weights.ndim != 1 or (self.weights < 0).any():
            raise ValueError("weights must be a 1-D non-negative array")
        if not (self.weights > 0).any():
            raise ValueError("at least one weight must be positive")

    def point_keys(self, points: np.ndarray, query: np.ndarray) -> np.ndarray:
        deltas = points - query
        return np.einsum("ij,j,ij->i", deltas, self.weights, deltas)

    def mindist(self, box: MBR, query: np.ndarray) -> float:
        below = box.low - query
        above = query - box.high
        gap = np.maximum(np.maximum(below, above), 0.0)
        # add.reduce (not weights @ gap²) so the batched kernel below is
        # bit-identical per row; see MBR.mindist.
        return float(np.add.reduce(self.weights * (gap * gap)))

    def mindist_many(
        self, lows: np.ndarray, highs: np.ndarray, query: np.ndarray
    ) -> np.ndarray:
        gap = np.maximum(np.maximum(lows - query, query - highs), 0.0)
        return np.add.reduce(self.weights * (gap * gap), axis=1)

    def key_to_distance(self, key: float) -> float:
        return math.sqrt(key)


class LpMetric(Metric):
    """Minkowski L_p distance; ``p = inf`` gives Chebyshev (maximum)."""

    def __init__(self, p: float):
        if not (p >= 1):
            raise ValueError(f"p must be >= 1 (or inf), got {p}")
        self.p = float(p)

    @property
    def _is_max(self) -> bool:
        return math.isinf(self.p)

    def point_keys(self, points: np.ndarray, query: np.ndarray) -> np.ndarray:
        deltas = np.abs(points - query)
        if self._is_max:
            return deltas.max(axis=1)
        return (deltas**self.p).sum(axis=1)

    def mindist(self, box: MBR, query: np.ndarray) -> float:
        below = box.low - query
        above = query - box.high
        gap = np.maximum(np.maximum(below, above), 0.0)
        if self._is_max:
            return float(gap.max())
        return float((gap**self.p).sum())

    def mindist_many(
        self, lows: np.ndarray, highs: np.ndarray, query: np.ndarray
    ) -> np.ndarray:
        gap = np.maximum(np.maximum(lows - query, query - highs), 0.0)
        if self._is_max:
            return gap.max(axis=1)
        return (gap**self.p).sum(axis=1)

    def key_to_distance(self, key: float) -> float:
        if self._is_max:
            return key
        return key ** (1.0 / self.p)
