"""k-nearest-neighbor search over R\\*/X-trees with page-access accounting.

Two traversal strategies from the literature (both discussed in Section 2
of the paper):

* :func:`knn_best_first` — Hjaltason & Samet [HS 95]: a global priority
  queue ordered by ``mindist`` visits partitions in increasing distance
  order; optimal in the number of accessed pages for a given tree.
* :func:`knn_branch_and_bound` — Roussopoulos et al. [RKV 95]: depth-first
  traversal with ``mindist`` ordering and ``minmaxdist``/``mindist``
  pruning; the algorithm the paper ran on the X-tree.

Both return the result list together with :class:`SearchStats`, whose
``page_accesses`` field (supernode-aware) is the cost metric of every
experiment in the paper.  :func:`knn_linear_scan` is the brute-force oracle
used by the tests.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.index import kernels
from repro.index.metrics import Euclidean, Metric
from repro.index.node import LeafEntry, Node
from repro.index.rstar import RStarTree

#: Default metric: L2 with squared-distance ranking keys.
_EUCLIDEAN = Euclidean()

__all__ = [
    "Neighbor",
    "SearchStats",
    "knn_best_first",
    "knn_branch_and_bound",
    "knn_linear_scan",
    "pages_intersecting_radius",
]


@dataclass(frozen=True, order=True)
class Neighbor:
    """One kNN result: Euclidean distance, object id and the point.

    Orders by (distance, oid), so sorted result lists are deterministic.
    """

    distance: float
    oid: int
    point: np.ndarray = field(repr=False, compare=False)


@dataclass
class SearchStats:
    """I/O and CPU counters of one kNN search."""

    node_accesses: int = 0
    leaf_accesses: int = 0
    page_accesses: int = 0
    distance_computations: int = 0

    def record(self, node: Node) -> None:
        """Charge one node visit (supernodes cost ``blocks`` pages)."""
        self.node_accesses += 1
        self.page_accesses += node.blocks
        if node.is_leaf:
            self.leaf_accesses += 1

    def merge(self, other: "SearchStats") -> None:
        self.node_accesses += other.node_accesses
        self.leaf_accesses += other.leaf_accesses
        self.page_accesses += other.page_accesses
        self.distance_computations += other.distance_computations


class _CandidateSet:
    """Bounded max-heap of the best k candidates seen so far."""

    def __init__(self, k: int):
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = k
        self._heap: List[Tuple[float, int, np.ndarray]] = []

    @property
    def bound(self) -> float:
        """Squared distance of the current k-th candidate (inf if fewer)."""
        if len(self._heap) < self.k:
            return float("inf")
        return -self._heap[0][0]

    def offer(self, sq_distance: float, oid: int, point: np.ndarray) -> None:
        if len(self._heap) < self.k:
            heapq.heappush(self._heap, (-sq_distance, oid, point))
        elif sq_distance < -self._heap[0][0]:
            heapq.heapreplace(self._heap, (-sq_distance, oid, point))

    def offer_many(
        self, keys: np.ndarray, entries: Sequence[LeafEntry]
    ) -> None:
        """Offer a whole leaf's entries at once (vectorized bound filter).

        Exactly equivalent to calling :meth:`offer` per entry in order:
        after warming the heap to ``k`` elements, a single NumPy mask
        drops every key that fails the *current* bound — exact because
        the bound only tightens during the loop, so a key rejected
        against the bound at mask time could never be accepted later.
        Survivors are re-checked in order against the live bound.
        """
        heap = self._heap
        start = 0
        total = len(entries)
        while len(heap) < self.k and start < total:
            entry = entries[start]
            heapq.heappush(heap, (-float(keys[start]), entry.oid, entry.point))
            start += 1
        if start >= total:
            return
        bound = -heap[0][0]
        for offset in np.nonzero(keys[start:] < bound)[0]:
            index = start + int(offset)
            key = float(keys[index])
            if key < -heap[0][0]:
                entry = entries[index]
                heapq.heapreplace(heap, (-key, entry.oid, entry.point))

    def offer_many_arrays(
        self, keys: np.ndarray, oids: np.ndarray, points: np.ndarray
    ) -> None:
        """Array-payload twin of :meth:`offer_many`.

        Same semantics over ``(N,)`` key/oid arrays and ``(N, d)``
        points — used by the out-of-core path, where a page arrives as
        raw arrays instead of :class:`LeafEntry` objects.  Exactly
        equivalent to calling :meth:`offer` per row in order.
        """
        heap = self._heap
        start = 0
        total = len(oids)
        while len(heap) < self.k and start < total:
            heapq.heappush(
                heap, (-float(keys[start]), int(oids[start]), points[start])
            )
            start += 1
        if start >= total:
            return
        bound = -heap[0][0]
        for offset in np.nonzero(keys[start:] < bound)[0]:
            index = start + int(offset)
            key = float(keys[index])
            if key < -heap[0][0]:
                heapq.heapreplace(
                    heap, (-key, int(oids[index]), points[index])
                )

    def items(self) -> List[Tuple[float, int, np.ndarray]]:
        """Current candidates as ``(squared key, oid, point)``, best
        first.

        Unlike :meth:`neighbors` this keeps the *exact* squared ranking
        keys, so candidate sets merged across processes reproduce the
        single-process pruning bound bit-for-bit (a sqrt round trip
        would not).
        """
        return sorted(
            ((-neg, oid, point) for neg, oid, point in self._heap),
            key=lambda item: (item[0], item[1]),
        )

    def neighbors(self, metric: Metric = _EUCLIDEAN) -> List[Neighbor]:
        ordered = sorted(
            ((-neg, oid, point) for neg, oid, point in self._heap)
        )
        return [
            Neighbor(float(metric.key_to_distance(key)), oid, point)
            for key, oid, point in ordered
        ]


def _leaf_distances(
    leaf: Node,
    query: np.ndarray,
    stats: SearchStats,
    metric: Metric = _EUCLIDEAN,
) -> Tuple[np.ndarray, List[LeafEntry]]:
    entries: List[LeafEntry] = leaf.entries  # type: ignore[assignment]
    points = np.vstack([entry.point for entry in entries])
    keys = metric.point_keys(points, query)
    stats.distance_computations += len(entries)
    return keys, entries


def knn_best_first(
    tree: RStarTree,
    query: Sequence[float],
    k: int = 1,
    metric: Optional[Metric] = None,
    on_node: Optional[Callable[[Node], None]] = None,
    use_kernels: Optional[bool] = None,
) -> Tuple[List[Neighbor], SearchStats]:
    """HS 95 incremental best-first kNN.

    Maintains a priority queue of tree nodes keyed by ``mindist`` to the
    query; terminates once the nearest unvisited node is farther than the
    current k-th candidate — i.e. it reads exactly the pages whose MBR
    intersects the kNN sphere (page-optimal for the given tree).

    ``metric`` selects the distance (default Euclidean); see
    :mod:`repro.index.metrics`.  ``on_node`` is invoked for every visited
    node in traversal order — callers that need the page-level access
    trace (e.g. a buffer pool) hook in here instead of re-deriving it from
    the aggregate :class:`SearchStats`.  ``use_kernels`` selects the
    vectorized traversal kernels (:mod:`repro.index.kernels`); ``None``
    defers to the ``REPRO_SCALAR_KERNELS`` environment variable.  Both
    paths produce bit-identical results and counters.
    """
    metric = metric or _EUCLIDEAN
    vectorized = kernels.kernels_enabled(use_kernels)
    query = np.asarray(query, dtype=float)
    stats = SearchStats()
    candidates = _CandidateSet(k)
    if tree.size == 0:
        return [], stats
    tiebreak = itertools.count()
    queue: List[Tuple[float, int, Node]] = [(0.0, next(tiebreak), tree.root)]
    while queue:
        mindist, _, node = heapq.heappop(queue)
        if mindist > candidates.bound:
            break
        stats.record(node)
        if on_node is not None:
            on_node(node)
        if node.is_leaf:
            if node.entries:
                if vectorized:
                    kernels.offer_leaf(candidates, node, query, stats, metric)
                else:
                    keys, entries = _leaf_distances(node, query, stats, metric)
                    for key, entry in zip(keys, entries):
                        candidates.offer(float(key), entry.oid, entry.point)
        elif vectorized:
            # The bound cannot change while expanding a directory node, so
            # one mask reproduces the per-child test — including which
            # children consume a tiebreak value, in the same order.
            child_keys = kernels.child_mindists(node, query, metric)
            for index in np.nonzero(child_keys <= candidates.bound)[0]:
                heapq.heappush(
                    queue,
                    (
                        float(child_keys[index]),
                        next(tiebreak),
                        node.entries[index],
                    ),
                )
        else:
            for child in node.entries:
                child_mindist = metric.mindist(child.mbr, query)
                if child_mindist <= candidates.bound:
                    heapq.heappush(
                        queue, (child_mindist, next(tiebreak), child)
                    )
    return candidates.neighbors(metric), stats


def knn_branch_and_bound(
    tree: RStarTree,
    query: Sequence[float],
    k: int = 1,
    metric: Optional[Metric] = None,
    use_kernels: Optional[bool] = None,
) -> Tuple[List[Neighbor], SearchStats]:
    """RKV 95 depth-first branch-and-bound kNN.

    Children are visited in ``mindist`` order; subtrees are pruned when
    their ``mindist`` exceeds the current k-th distance, and (for k = 1
    under the default Euclidean metric) when it exceeds the smallest
    sibling ``minmaxdist`` — the "all partition lists may be pruned" rule
    of the paper's Section 2.  ``use_kernels`` selects the vectorized
    kernels as in :func:`knn_best_first`.
    """
    custom_metric = metric is not None
    metric = metric or _EUCLIDEAN
    vectorized = kernels.kernels_enabled(use_kernels)
    query = np.asarray(query, dtype=float)
    stats = SearchStats()
    candidates = _CandidateSet(k)
    if tree.size == 0:
        return [], stats

    def visit(node: Node) -> None:
        stats.record(node)
        if node.is_leaf:
            if node.entries:
                if vectorized:
                    kernels.offer_leaf(candidates, node, query, stats, metric)
                else:
                    keys, entries = _leaf_distances(node, query, stats, metric)
                    for key, entry in zip(keys, entries):
                        candidates.offer(float(key), entry.oid, entry.point)
            return
        if vectorized:
            child_keys = kernels.child_mindists(node, query, metric)
            branches = sorted(
                (float(child_keys[index]), index, child)
                for index, child in enumerate(node.entries)
            )
        else:
            branches = sorted(
                ((metric.mindist(child.mbr, query), index, child)
                 for index, child in enumerate(node.entries)),
            )
        if k == 1 and not custom_metric:
            # MM-pruning: some sibling guarantees a point within its
            # minmaxdist, so children farther than the best guarantee can
            # never host the nearest neighbor.  (The bound is derived for
            # squared Euclidean keys, so it is skipped for custom metrics.)
            if vectorized:
                best_guarantee = float(
                    kernels.child_minmaxdists(node, query).min()
                )
            else:
                best_guarantee = min(
                    child.mbr.minmaxdist(query) for _, _, child in branches
                )
        else:
            best_guarantee = float("inf")
        for mindist, _, child in branches:
            if mindist > candidates.bound or mindist > best_guarantee:
                continue
            visit(child)

    visit(tree.root)
    return candidates.neighbors(metric), stats


def knn_linear_scan(
    points: np.ndarray,
    query: Sequence[float],
    k: int = 1,
    oids: Optional[Sequence[int]] = None,
    metric: Optional[Metric] = None,
) -> List[Neighbor]:
    """Brute-force kNN over a raw point array (testing/baseline oracle)."""
    metric = metric or _EUCLIDEAN
    points = np.asarray(points, dtype=float)
    query = np.asarray(query, dtype=float)
    if points.ndim != 2:
        raise ValueError(f"points must be (N, d), got {points.shape}")
    if oids is None:
        oids = np.arange(len(points))
    keys = metric.point_keys(points, query)
    k = min(k, len(points))
    order = np.argsort(keys, kind="stable")[:k]
    return [
        Neighbor(float(metric.key_to_distance(keys[i])), int(oids[i]),
                 points[i])
        for i in order
    ]


def pages_intersecting_radius(
    tree: RStarTree,
    query: Sequence[float],
    radius: float,
    use_kernels: Optional[bool] = None,
) -> int:
    """Pages any correct NN algorithm must read for the given kNN radius.

    Counts the pages of all nodes whose MBR intersects the sphere of
    (Euclidean) ``radius`` around ``query`` — the paper's "data pages
    intersecting the NN-sphere" (Section 3.1).  The sphere test is
    applied when a child is pushed (one batched ``mindist`` call per
    directory node under the vectorized kernels); children of a
    non-empty directory always have an MBR, so only the root needs the
    ``None`` guard.
    """
    query = np.asarray(query, dtype=float)
    sq_radius = radius * radius
    vectorized = kernels.kernels_enabled(use_kernels)
    root = tree.root
    if root.mbr is None or root.mbr.mindist(query) > sq_radius:
        return 0
    pages = root.blocks
    stack: List[Node] = [] if root.is_leaf else [root]
    while stack:
        node = stack.pop()
        if vectorized:
            child_keys = kernels.child_mindists(node, query)
            hits = [
                node.entries[index]
                for index in np.nonzero(child_keys <= sq_radius)[0]
            ]
        else:
            hits = [
                child
                for child in node.entries
                if child.mbr.mindist(query) <= sq_radius
            ]
        for child in hits:
            pages += child.blocks
            if not child.is_leaf:
                stack.append(child)
    return pages
