"""Text-descriptor features of substrings of synthetic documents.

The paper's second real workload: "text data corresponding to substrings of
a large set of texts" (d = 15), i.e. feature vectors characterizing
substrings of ASCII documents [Kuk 92].  We reproduce the pipeline on
synthetic text:

1. documents are generated from a Zipf-distributed vocabulary of random
   words (natural language's heavy-tailed word frequencies are what makes
   such descriptors clustered and correlated);
2. a sliding window extracts fixed-length substrings;
3. each substring is described by the counts of its character bigrams,
   hashed into ``d`` buckets and normalized by the window length.

The result is non-negative, skewed, highly correlated data — frequent
bigrams dominate a few feature dimensions while most dimensions stay small,
mirroring real text descriptors.
"""

from __future__ import annotations

import numpy as np

__all__ = ["text_descriptors", "generate_document"]

_ALPHABET = "abcdefghijklmnopqrstuvwxyz "


def generate_document(
    length: int,
    seed: int = 0,
    vocabulary_size: int = 500,
    zipf_exponent: float = 1.3,
) -> str:
    """A synthetic ASCII document of roughly ``length`` characters.

    Words are drawn from a random vocabulary with Zipf-distributed
    frequencies, giving the bursty, repetitive character statistics of
    natural text.
    """
    if length < 1:
        raise ValueError(f"length must be >= 1, got {length}")
    rng = np.random.default_rng(seed)
    letters = np.array(list(_ALPHABET[:-1]))
    words = [
        "".join(rng.choice(letters, size=rng.integers(2, 9)))
        for _ in range(vocabulary_size)
    ]
    ranks = np.arange(1, vocabulary_size + 1, dtype=float)
    probabilities = ranks ** (-zipf_exponent)
    probabilities /= probabilities.sum()
    chunks = []
    total = 0
    while total < length:
        word = words[rng.choice(vocabulary_size, p=probabilities)]
        chunks.append(word)
        total += len(word) + 1
    return " ".join(chunks)[:length]


def text_descriptors(
    num_points: int,
    dimension: int,
    seed: int = 0,
    window: int = 24,
    document_count: int = 4,
) -> np.ndarray:
    """Hashed character-bigram descriptors of document substrings.

    Parameters
    ----------
    num_points:
        Number of substrings (descriptors) to extract.
    dimension:
        Number of hash buckets = feature dimensions.
    window:
        Substring length in characters.
    document_count:
        Number of distinct synthetic documents to draw substrings from.
    """
    if num_points < 0 or dimension < 1:
        raise ValueError("need num_points >= 0 and dimension >= 1")
    if window < 2:
        raise ValueError(f"window must be >= 2, got {window}")
    rng = np.random.default_rng(seed)
    per_document = -(-num_points // document_count)  # ceil division
    documents = [
        generate_document(
            length=max(2 * window, per_document + window + 1),
            seed=seed + 1000 + i,
        )
        for i in range(document_count)
    ]
    # One fixed random hash of the 27*27 bigram space into d buckets.
    bucket_of = rng.integers(0, dimension, len(_ALPHABET) ** 2)

    def char_index(ch: str) -> int:
        position = _ALPHABET.find(ch)
        return position if position >= 0 else len(_ALPHABET) - 1

    features = np.zeros((num_points, dimension))
    row = 0
    for document in documents:
        codes = np.array([char_index(c) for c in document])
        bigrams = codes[:-1] * len(_ALPHABET) + codes[1:]
        buckets = bucket_of[bigrams]
        starts = rng.integers(0, len(document) - window, per_document)
        for start in starts:
            if row >= num_points:
                break
            counts = np.bincount(
                buckets[start:start + window - 1], minlength=dimension
            )
            features[row] = counts
            row += 1
    # Normalize by the window so features lie in [0, 1]; typical counts are
    # small, so frequent-bigram buckets spread while most stay near 0 —
    # rescale by the global 99th percentile to use the unit cube.
    anchor = np.quantile(features, 0.99) if num_points else 1.0
    features /= max(anchor * 1.25, 1.0)
    return np.clip(features, 0.0, 1.0)
