"""Color-histogram features of synthetic photo collections.

The paper's introductory scenario [Fal 94]: images are mapped to color
histograms and similarity search runs on those vectors.  We synthesize a
collection with *scene structure* — each scene type (beach, forest, ...)
has its own Dirichlet prior over color bins, so photos of the same scene
are close in feature space — which makes the workload realistically
clustered and lets retrieval quality be measured against the scene labels.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

__all__ = ["color_histograms", "DEFAULT_SCENES"]

DEFAULT_SCENES: Tuple[str, ...] = (
    "beach",
    "forest",
    "city-night",
    "snow",
    "desert",
    "portrait",
)


def color_histograms(
    num_images: int,
    bins: int,
    seed: int = 0,
    scenes: Sequence[str] = DEFAULT_SCENES,
    concentration: float = 30.0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Synthesize per-photo color histograms with scene structure.

    Parameters
    ----------
    num_images, bins:
        Collection size and histogram resolution (feature dimensions).
    scenes:
        Scene labels; each gets a random Dirichlet prior over the bins.
    concentration:
        Dirichlet concentration of photos around their scene prior —
        higher values give tighter scene clusters.

    Returns
    -------
    (features, labels):
        ``(N, bins)`` histogram features normalized into the unit cube,
        and the ``(N,)`` integer scene label of each photo.
    """
    if num_images < 0 or bins < 1:
        raise ValueError("need num_images >= 0 and bins >= 1")
    if not scenes:
        raise ValueError("need at least one scene")
    if concentration <= 0:
        raise ValueError(f"concentration must be > 0, got {concentration}")
    rng = np.random.default_rng(seed)
    priors = rng.gamma(0.6, size=(len(scenes), bins)) + 0.05
    labels = rng.integers(0, len(scenes), num_images)
    if num_images:
        histograms = np.vstack(
            [rng.dirichlet(priors[label] * concentration)
             for label in labels]
        )
        # One global anchor keeps the relative bin masses (per-dimension
        # min-max scaling would destroy the histogram semantics).
        anchor = np.quantile(histograms, 0.995)
        features = np.clip(histograms / max(anchor, 1e-12), 0.0, 1.0)
    else:
        features = np.zeros((0, bins))
    return features, labels
