"""Synthetic workload generators: uniform, clustered and correlated data.

All generators return points in the unit hypercube ``[0, 1]^d`` (the
paper's data-space convention, Definition 1) and take an explicit seed so
every experiment is reproducible.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = [
    "uniform_points",
    "gaussian_clusters",
    "corner_clusters",
    "correlated_points",
    "query_workload",
]


def uniform_points(
    num_points: int, dimension: int, seed: int = 0
) -> np.ndarray:
    """Uniformly distributed points — the paper's synthetic workload."""
    if num_points < 0 or dimension < 1:
        raise ValueError("need num_points >= 0 and dimension >= 1")
    rng = np.random.default_rng(seed)
    return rng.random((num_points, dimension))


def gaussian_clusters(
    num_points: int,
    dimension: int,
    num_clusters: int = 10,
    spread: float = 0.05,
    seed: int = 0,
    centers: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Mixture of isotropic Gaussian clusters, clipped to the unit cube."""
    if num_clusters < 1:
        raise ValueError(f"num_clusters must be >= 1, got {num_clusters}")
    if spread <= 0:
        raise ValueError(f"spread must be > 0, got {spread}")
    rng = np.random.default_rng(seed)
    if centers is None:
        centers = rng.uniform(0.15, 0.85, (num_clusters, dimension))
    else:
        centers = np.asarray(centers, dtype=float)
        num_clusters = len(centers)
    labels = rng.integers(0, num_clusters, num_points)
    points = centers[labels] + spread * rng.standard_normal(
        (num_points, dimension)
    )
    return np.clip(points, 0.0, 1.0)


def corner_clusters(
    num_points: int,
    dimension: int,
    num_clusters: int = 20,
    spread: float = 0.08,
    seed: int = 0,
) -> np.ndarray:
    """Clusters pulled toward the corners of the data space.

    Models the paper's observation (Figure 5) that high-dimensional real
    data concentrates near the (d-1)-dimensional surface.
    """
    rng = np.random.default_rng(seed)
    raw = rng.random((num_clusters, dimension))
    margin = 0.15 * rng.random((num_clusters, dimension))
    centers = np.where(raw > 0.5, 1.0 - margin, margin)
    return gaussian_clusters(
        num_points,
        dimension,
        spread=spread,
        seed=seed + 1,
        centers=centers,
    )


def correlated_points(
    num_points: int,
    dimension: int,
    intrinsic_dimension: int = 4,
    noise: float = 0.02,
    seed: int = 0,
) -> np.ndarray:
    """Points near a random ``intrinsic_dimension``-dimensional linear
    manifold.

    Models highly *correlated* feature data — the case where the paper's
    one-dimensional α-quantile split no longer balances loads and
    recursive declustering is required (Section 4.3).
    """
    if not 1 <= intrinsic_dimension <= dimension:
        raise ValueError(
            f"intrinsic_dimension must be in [1, {dimension}], "
            f"got {intrinsic_dimension}"
        )
    rng = np.random.default_rng(seed)
    basis = rng.standard_normal((intrinsic_dimension, dimension))
    basis /= np.linalg.norm(basis, axis=1, keepdims=True)
    latent = rng.uniform(-1.0, 1.0, (num_points, intrinsic_dimension))
    points = 0.5 + 0.35 * (latent @ basis)
    points += noise * rng.standard_normal((num_points, dimension))
    return np.clip(points, 0.0, 1.0)


def query_workload(
    points: np.ndarray,
    num_queries: int,
    seed: int = 0,
    jitter: float = 0.01,
    uniform_fraction: float = 0.0,
) -> np.ndarray:
    """Query points drawn from the data distribution (plus optional uniform
    queries).

    Similarity queries in multimedia databases are almost always issued
    with a feature vector resembling the stored data ("query by example"),
    so the default perturbs random data points; ``uniform_fraction`` mixes
    in space-uniform queries, which is what the paper used for its
    synthetic experiments.
    """
    points = np.asarray(points, dtype=float)
    if points.ndim != 2 or len(points) == 0:
        raise ValueError("points must be a non-empty (N, d) array")
    if not 0.0 <= uniform_fraction <= 1.0:
        raise ValueError("uniform_fraction must be in [0, 1]")
    rng = np.random.default_rng(seed)
    num_uniform = int(round(num_queries * uniform_fraction))
    num_data = num_queries - num_uniform
    picks = rng.integers(0, len(points), num_data)
    data_queries = points[picks] + jitter * rng.standard_normal(
        (num_data, points.shape[1])
    )
    uniform_queries = rng.random((num_uniform, points.shape[1]))
    queries = np.vstack([data_queries, uniform_queries])
    return np.clip(queries, 0.0, 1.0)
