"""Fourier-descriptor features of synthetic CAD-part contours.

The paper's main real-world workload: "Fourier points corresponding to
contours of industrial parts" (d = 8..16, up to 40 MB) plus a second,
*highly clustered* variant ("a set of variants of CAD-parts") used for the
recursive-declustering experiment.  The original data is proprietary, so we
synthesize it the way such descriptors are actually produced:

1. a closed 2-D contour is a radius function
   ``r(t) = 1 + sum_m A_m * (a_m cos(m t) + b_m sin(m t))`` with random
   coefficients and a power-law amplitude decay ``A_m ~ 1/m^decay``
   (industrial contours are piecewise smooth, so their spectra decay);
2. the contour is sampled and its discrete Fourier transform taken;
3. the feature vector is the vector of coefficient *magnitudes*
   ``|c_1| .. |c_d|`` — the classic rotation/start-point invariant Fourier
   shape descriptor [WW 80] — normalized into the unit cube by one global
   scale factor (per-dimension rescaling would destroy the energy decay
   that makes the descriptor meaningful).

The resulting data has the two properties the paper's evaluation depends
on: (a) the energy decay concentrates higher coefficients below the
midpoint split, so only the leading ~6-9 dimensions straddle the split
(moderate *effective* bucket dimensionality — many neighboring quadrants
are populated); (b) with ``num_families`` set, descriptors cluster tightly
around part-family prototypes (the "variants of CAD parts" workload).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["fourier_points", "contour_radius_samples", "straddling_dimensions"]

#: Number of contour samples; must exceed twice the highest coefficient.
_SAMPLES = 128


def contour_radius_samples(
    coefficients_a: np.ndarray,
    coefficients_b: np.ndarray,
    amplitudes: np.ndarray,
    samples: int = _SAMPLES,
) -> np.ndarray:
    """Radius samples ``r(t_i)`` of one synthetic closed contour."""
    orders = np.arange(1, len(amplitudes) + 1)
    t = np.linspace(0.0, 2.0 * np.pi, samples, endpoint=False)
    phases = orders[:, None] * t[None, :]
    wiggle = amplitudes[:, None] * (
        coefficients_a[:, None] * np.cos(phases)
        + coefficients_b[:, None] * np.sin(phases)
    )
    return 1.0 + wiggle.sum(axis=0)


def fourier_points(
    num_points: int,
    dimension: int,
    seed: int = 0,
    decay: float = 0.3,
    num_families: Optional[int] = None,
    family_spread: float = 0.08,
) -> np.ndarray:
    """Fourier-descriptor feature vectors of synthetic contours.

    Parameters
    ----------
    num_points, dimension:
        Number of descriptors and coefficients per descriptor.
    decay:
        Amplitude decay exponent of the contour spectra.  Smaller values
        spread energy into more coefficients (more dimensions straddle the
        midpoint split); the default 0.3 makes every dimension of a d = 15
        descriptor straddle the split, but with strongly graded occupancy —
        a few thousand populated quadrants out of 2^15, the regime the
        paper's evaluation operates in.
    num_families:
        When set, contours are *variants* of this many base parts (tight
        clusters) — the paper's highly clustered CAD workload (Figure 16).
    family_spread:
        Relative perturbation of a variant around its family prototype.
    """
    if num_points < 0 or dimension < 1:
        raise ValueError("need num_points >= 0 and dimension >= 1")
    if 2 * dimension >= _SAMPLES:
        raise ValueError(f"dimension must be < {_SAMPLES // 2}")
    rng = np.random.default_rng(seed)
    orders = np.arange(1, dimension + 1)
    amplitudes = orders ** (-float(decay))

    if num_families is None:
        coeff_a = rng.standard_normal((num_points, dimension))
        coeff_b = rng.standard_normal((num_points, dimension))
    else:
        if num_families < 1:
            raise ValueError(f"num_families must be >= 1, got {num_families}")
        base_a = rng.standard_normal((num_families, dimension))
        base_b = rng.standard_normal((num_families, dimension))
        family = rng.integers(0, num_families, num_points)
        coeff_a = base_a[family] + family_spread * rng.standard_normal(
            (num_points, dimension)
        )
        coeff_b = base_b[family] + family_spread * rng.standard_normal(
            (num_points, dimension)
        )

    # DFT of the radius signal r(t): with r built directly from the
    # (a_m, b_m) series, |c_m| = A_m/2 * sqrt(a_m^2 + b_m^2).  Computing it
    # in closed form is exact and avoids an FFT per contour.
    magnitudes = 0.5 * amplitudes * np.hypot(coeff_a, coeff_b)

    # Global normalization into [0, 1]: one scale for the whole data set,
    # anchored at a high quantile of the first (largest) coefficient so a
    # handful of outliers cannot squash everything else.  The 0.65 divisor
    # centers the bulk of the leading coefficients around the midpoint
    # split (clipping the top ~2% of dimension 0).
    anchor = np.quantile(magnitudes[:, 0], 0.99) if num_points else 1.0
    features = magnitudes / (0.65 * anchor)
    return np.clip(features, 0.0, 1.0)


def straddling_dimensions(
    points: np.ndarray, split: float = 0.5, minimum_fraction: float = 0.02
) -> int:
    """How many dimensions have data on both sides of the split value.

    The *effective bucket dimensionality* of a data set: dimensions whose
    smaller side holds less than ``minimum_fraction`` of the points
    contribute (almost) no quadrant structure.
    """
    points = np.asarray(points, dtype=float)
    above = (points >= split).mean(axis=0)
    return int(
        ((above >= minimum_fraction) & (above <= 1.0 - minimum_fraction)).sum()
    )
