"""Workload generators: uniform/clustered synthetics, Fourier contours,
text descriptors."""

from __future__ import annotations

from repro.data.fourier import (
    contour_radius_samples,
    fourier_points,
    straddling_dimensions,
)
from repro.data.histograms import DEFAULT_SCENES, color_histograms
from repro.data.generators import (
    corner_clusters,
    correlated_points,
    gaussian_clusters,
    query_workload,
    uniform_points,
)
from repro.data.text import generate_document, text_descriptors

__all__ = [
    "DEFAULT_SCENES",
    "color_histograms",
    "contour_radius_samples",
    "corner_clusters",
    "correlated_points",
    "fourier_points",
    "gaussian_clusters",
    "generate_document",
    "query_workload",
    "straddling_dimensions",
    "text_descriptors",
    "uniform_points",
]
