"""Ambient observation context: one tracer/registry for a whole run.

The experiment harness (:mod:`repro.experiments.harness`) and the figure
runners construct engines internally, so there is no argument path to
hand them a tracer.  Instead, every engine that was not given an
explicit ``tracer`` falls back to :func:`current_tracer` at query time —
wrapping any existing experiment in :func:`observe` is therefore enough
to trace it end to end::

    from repro.obs import MetricsRegistry, RecordingTracer, observe
    from repro.experiments import run_fig12_speedup_uniform

    tracer = RecordingTracer(metrics=MetricsRegistry())
    with observe(tracer):
        run_fig12_speedup_uniform(scale=0.25)
    # tracer.events / tracer.metrics now hold the whole run

Outside any :func:`observe` block, :func:`current_tracer` returns the
:data:`~repro.obs.tracer.NULL_TRACER` singleton, so the default cost is
one context-variable read per query — page-level hot paths are guarded
by ``tracer.enabled`` and never reach this module.
"""

from __future__ import annotations

import contextlib
from contextvars import ContextVar
from typing import Iterator, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NULL_TRACER, Tracer

__all__ = ["observe", "current_tracer", "current_metrics"]

_ACTIVE_TRACER: ContextVar[Optional[Tracer]] = ContextVar(
    "repro_obs_tracer", default=None
)
_ACTIVE_METRICS: ContextVar[Optional[MetricsRegistry]] = ContextVar(
    "repro_obs_metrics", default=None
)


def current_tracer() -> Tracer:
    """The tracer of the innermost :func:`observe` block (or the null
    tracer)."""
    tracer = _ACTIVE_TRACER.get()
    return tracer if tracer is not None else NULL_TRACER


def current_metrics() -> Optional[MetricsRegistry]:
    """The registry of the innermost :func:`observe` block, if any.

    Falls back to the active tracer's ``metrics`` attribute so
    ``observe(RecordingTracer(metrics=registry))`` publishes simulator
    aggregates without repeating the registry.
    """
    metrics = _ACTIVE_METRICS.get()
    if metrics is not None:
        return metrics
    tracer = _ACTIVE_TRACER.get()
    return getattr(tracer, "metrics", None)


@contextlib.contextmanager
def observe(
    tracer: Optional[Tracer] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> Iterator[Tracer]:
    """Make ``tracer``/``metrics`` ambient for the enclosed block.

    Every engine or simulator constructed (or queried) inside the block
    without an explicit ``tracer`` argument reports into these.  Blocks
    nest; the inner one wins.
    """
    active = tracer if tracer is not None else NULL_TRACER
    tracer_token = _ACTIVE_TRACER.set(active)
    metrics_token = _ACTIVE_METRICS.set(metrics)
    try:
        yield active
    finally:
        _ACTIVE_TRACER.reset(tracer_token)
        _ACTIVE_METRICS.reset(metrics_token)
