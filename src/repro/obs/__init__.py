"""repro.obs — structured observability: query tracing + metrics.

The paper argues about *per-disk access distributions*; this package is
the substrate that makes those distributions inspectable on every query
path (see ``docs/observability.md`` for the full event vocabulary,
metric catalogue, and a worked end-to-end example):

* :mod:`repro.obs.tracer` — :class:`Tracer` interface,
  :class:`NullTracer` zero-overhead default, :class:`RecordingTracer`
  producing structured :class:`TraceEvent` records with latency-model
  timestamps;
* :mod:`repro.obs.metrics` — :class:`MetricsRegistry` of catalogued
  counters, per-disk vector counters, and histograms;
* :mod:`repro.obs.context` — :func:`observe` makes a tracer ambient so
  whole experiment runs can be traced without threading arguments;
* :mod:`repro.obs.export` — JSONL/CSV trace exporters, metric dumps, a
  terminal summary table, and the benchmark suite's result-table JSON;
* :mod:`repro.obs.catalogue` — generator/verifier keeping the docs'
  metric catalogue byte-identical to :data:`METRIC_CATALOGUE`.
"""

from __future__ import annotations

from repro.obs.context import current_metrics, current_tracer, observe
from repro.obs.export import (
    events_to_csv,
    events_to_jsonl,
    metrics_to_csv,
    metrics_to_json,
    summary_table,
    table_to_json,
)
from repro.obs.metrics import (
    METRIC_CATALOGUE,
    Counter,
    Histogram,
    MetricSpec,
    MetricsRegistry,
    VectorCounter,
    catalogue_names,
    spec_for,
)
from repro.obs.tracer import (
    EVENT_KINDS,
    NULL_TRACER,
    NullTracer,
    RecordingTracer,
    TraceEvent,
    Tracer,
)

__all__ = [
    "EVENT_KINDS",
    "METRIC_CATALOGUE",
    "NULL_TRACER",
    "Counter",
    "Histogram",
    "MetricSpec",
    "MetricsRegistry",
    "NullTracer",
    "RecordingTracer",
    "TraceEvent",
    "Tracer",
    "VectorCounter",
    "catalogue_names",
    "current_metrics",
    "current_tracer",
    "events_to_csv",
    "events_to_jsonl",
    "metrics_to_csv",
    "metrics_to_json",
    "observe",
    "spec_for",
    "summary_table",
    "table_to_json",
]
