"""Exporters: JSON-lines and CSV traces, metric dumps, summary tables.

Three families, all pure string producers (writing is the caller's job,
so the CLI and tests share one code path):

* **traces** — :func:`events_to_jsonl` / :func:`events_to_csv` render a
  :class:`~repro.obs.tracer.RecordingTracer`'s event list;
* **metrics** — :func:`metrics_to_json` / :func:`metrics_to_csv` /
  :func:`summary_table` render a
  :class:`~repro.obs.metrics.MetricsRegistry` snapshot;
* **result tables** — :func:`table_to_json` renders any object with the
  ``ResultTable`` shape (``title``/``columns``/``rows``/``notes``) as a
  schema'd JSON document; the benchmark suite writes these next to its
  ``results/*.txt`` files.

Output is deterministic for a deterministic workload: keys are emitted
in a fixed order and floats are plain ``repr`` values, so golden-file
tests can compare byte-for-byte.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Protocol, Sequence

from repro.obs.metrics import MetricsRegistry, spec_for
from repro.obs.tracer import TraceEvent

__all__ = [
    "events_to_jsonl",
    "events_to_csv",
    "TRACE_CSV_COLUMNS",
    "metrics_to_json",
    "metrics_to_csv",
    "summary_table",
    "table_to_json",
]

#: Fixed column set of the CSV trace format; kind-specific extras are
#: packed into the final ``data`` column as compact JSON.
TRACE_CSV_COLUMNS = ("seq", "t_ms", "kind", "query", "disk", "pages", "data")


def events_to_jsonl(events: Sequence[TraceEvent]) -> str:
    """One JSON object per line, core fields first, extras sorted."""
    return "\n".join(
        json.dumps(event.to_dict(), separators=(", ", ": "))
        for event in events
    )


def _csv_cell(value: Any) -> str:
    text = str(value)
    if any(ch in text for ch in ',"\n'):
        return '"' + text.replace('"', '""') + '"'
    return text


def events_to_csv(events: Sequence[TraceEvent]) -> str:
    """Header plus one row per event (see :data:`TRACE_CSV_COLUMNS`)."""
    lines = [",".join(TRACE_CSV_COLUMNS)]
    for event in events:
        data = (
            json.dumps(
                {key: event.data[key] for key in sorted(event.data)},
                separators=(",", ":"),
            )
            if event.data
            else ""
        )
        lines.append(
            ",".join(
                _csv_cell(cell)
                for cell in (
                    event.seq,
                    event.t_ms,
                    event.kind,
                    event.query,
                    event.disk,
                    event.pages,
                    data,
                )
            )
        )
    return "\n".join(lines)


def metrics_to_json(registry: MetricsRegistry) -> str:
    """The registry snapshot (:meth:`MetricsRegistry.as_dict`) as JSON."""
    return json.dumps(registry.as_dict(), indent=2)


def metrics_to_csv(registry: MetricsRegistry) -> str:
    """Long-format CSV: ``metric,kind,unit,field,value`` rows.

    Counters yield one ``value`` row, vector counters one ``disk<i>``
    row per cell, histograms one row per summary statistic, and the
    derived ``cache_hit_ratio`` closes the file when cache metrics
    exist.
    """
    def unit_of(name: str) -> str:
        spec = spec_for(name)
        return spec.unit if spec is not None else ""

    lines = ["metric,kind,unit,field,value"]
    for name, counter in sorted(registry.counters.items()):
        lines.append(
            f"{name},counter,{unit_of(name)},value,{counter.value}"
        )
    for name, vector in sorted(registry.vectors.items()):
        for disk, value in enumerate(vector.values):
            lines.append(
                f"{name},vector,{unit_of(name)},disk{disk},{value}"
            )
    for name, histogram in sorted(registry.histograms.items()):
        stats = (
            ("count", histogram.count),
            ("total", histogram.total),
            ("mean", histogram.mean),
            ("min", histogram.min),
            ("max", histogram.max),
            ("p50", histogram.quantile(0.5)),
            ("p95", histogram.quantile(0.95)),
        )
        for stat, value in stats:
            lines.append(
                f"{name},histogram,{unit_of(name)},{stat},{value}"
            )
    ratio = registry.cache_hit_ratio()
    if ratio is not None:
        lines.append(f"cache_hit_ratio,derived,fraction,value,{ratio}")
    return "\n".join(lines)


def _format_value(value: float) -> str:
    if isinstance(value, int) or float(value).is_integer():
        return str(int(value))
    return f"{value:.4g}"


def summary_table(registry: MetricsRegistry, title: str = "metrics") -> str:
    """Fixed-width terminal summary of every instantiated metric.

    Counters and the derived cache-hit ratio print one line each;
    vectors print their cells; histograms print count/mean/min/max/p95.
    """
    rows: List[List[str]] = []
    for name, counter in sorted(registry.counters.items()):
        spec = spec_for(name)
        rows.append(
            [name, str(counter.value), spec.unit if spec else ""]
        )
    ratio = registry.cache_hit_ratio()
    if ratio is not None:
        rows.append(["cache_hit_ratio", f"{ratio:.4f}", "fraction"])
    for name, vector in sorted(registry.vectors.items()):
        spec = spec_for(name)
        cells = " ".join(str(v) for v in vector.values)
        rows.append([name, f"[{cells}]", spec.unit if spec else ""])
    for name, histogram in sorted(registry.histograms.items()):
        spec = spec_for(name)
        rows.append(
            [
                name,
                (
                    f"n={histogram.count} mean={_format_value(histogram.mean)}"
                    f" min={_format_value(histogram.min)}"
                    f" max={_format_value(histogram.max)}"
                    f" p95={_format_value(histogram.quantile(0.95))}"
                ),
                spec.unit if spec else "",
            ]
        )
    if not rows:
        return f"{title}\n(no metrics recorded)"
    headers = ["metric", "value", "unit"]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rows))
        for i in range(3)
    ]
    lines = [title, "=" * len(title)]
    lines.append(
        "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    )
    lines.append("-" * (sum(widths) + 4))
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


class _TableLike(Protocol):
    """The ``ResultTable`` surface the JSON exporter relies on."""

    title: str
    columns: List[str]
    rows: List[List[Any]]
    notes: List[str]


def table_to_json(table: _TableLike) -> str:
    """A ``ResultTable`` as a schema'd JSON document.

    Schema: ``{"schema": "repro.result_table/v1", "title": str,
    "columns": [str], "rows": [[cell]], "notes": [str]}`` — the JSON
    sibling the benchmark suite writes next to every ``results/*.txt``
    so downstream tooling can track the perf trajectory without parsing
    ASCII tables.
    """
    payload: Dict[str, Any] = {
        "schema": "repro.result_table/v1",
        "title": table.title,
        "columns": list(table.columns),
        "rows": [list(row) for row in table.rows],
        "notes": list(table.notes),
    }
    return json.dumps(payload, indent=2)
