"""Named metrics: counters, per-disk vector counters, and histograms.

A :class:`MetricsRegistry` is the aggregation side of the observability
layer: the tracer and the simulators publish into it, the exporters
(:mod:`repro.obs.export`) and the CLI ``stats`` subcommand read it out.

Every metric name is declared up front in :data:`METRIC_CATALOGUE` — the
registry refuses unknown names by default, which is what keeps
``docs/observability.md`` (generated from the catalogue by
``python -m repro.obs.catalogue``) honest: a metric that exists in code
but not in the docs cannot be created, and CI verifies the generated
table has not drifted.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "MetricSpec",
    "METRIC_CATALOGUE",
    "catalogue_names",
    "spec_for",
    "Counter",
    "VectorCounter",
    "Histogram",
    "MetricsRegistry",
]


@dataclass(frozen=True)
class MetricSpec:
    """Catalogue entry: name, kind, unit, owning module, description."""

    name: str
    kind: str  # "counter" | "vector" | "histogram" | "derived"
    unit: str
    source: str
    description: str


#: The complete metric catalogue.  ``docs/observability.md`` renders this
#: table verbatim; ``python -m repro.obs.catalogue --verify`` fails CI if
#: the two drift apart.
METRIC_CATALOGUE: Tuple[MetricSpec, ...] = (
    MetricSpec(
        "queries_total", "counter", "queries", "repro.obs.tracer",
        "Query spans opened (one per kNN/window query).",
    ),
    MetricSpec(
        "pages_read_total", "counter", "pages", "repro.parallel.disks",
        "Pages charged to the simulated disks (cache misses only when a "
        "buffer pool is attached); equals DiskArray.total_pages.",
    ),
    MetricSpec(
        "pages_read_per_disk", "vector", "pages", "repro.parallel.disks",
        "Per-disk page reads; equals DiskArray.pages_per_disk "
        "bit-for-bit.",
    ),
    MetricSpec(
        "nodes_visited_total", "counter", "nodes", "repro.parallel.engine",
        "Index nodes popped by the best-first search (directory + data).",
    ),
    MetricSpec(
        "buckets_pruned_total", "counter", "subtrees",
        "repro.parallel.engine",
        "Subtrees skipped because their MBR cannot intersect the current "
        "kNN sphere (neighbor-rank pruning).",
    ),
    MetricSpec(
        "distance_computations_total", "counter", "computations",
        "repro.index.knn",
        "Point-to-query distance evaluations inside data pages.",
    ),
    MetricSpec(
        "cache_hits_total", "counter", "requests", "repro.parallel.cache",
        "Buffer-pool requests served from RAM (no disk access).",
    ),
    MetricSpec(
        "cache_misses_total", "counter", "requests", "repro.parallel.cache",
        "Buffer-pool requests that fell through to a page read.",
    ),
    MetricSpec(
        "cache_hits_per_disk", "vector", "requests", "repro.parallel.cache",
        "Per-disk buffer-pool hits.",
    ),
    MetricSpec(
        "cache_misses_per_disk", "vector", "requests",
        "repro.parallel.cache",
        "Per-disk buffer-pool misses.",
    ),
    MetricSpec(
        "query_total_pages", "histogram", "pages/query",
        "repro.parallel.engine",
        "Pages read per query, summed over all disks.",
    ),
    MetricSpec(
        "busiest_disk_pages", "histogram", "pages/query",
        "repro.parallel.engine",
        "Pages read by the busiest disk per query — the paper's cost "
        "metric.",
    ),
    MetricSpec(
        "busiest_disk_share", "histogram", "fraction",
        "repro.parallel.engine",
        "busiest_disk_pages / query_total_pages per query; near-optimal "
        "declustering drives this toward 1/num_disks.",
    ),
    MetricSpec(
        "query_time_ms", "histogram", "ms", "repro.parallel.engine",
        "Simulated elapsed time per query (busiest disk x page service "
        "time).",
    ),
    MetricSpec(
        "makespan_ms", "histogram", "ms", "repro.parallel.throughput",
        "Time until every disk drained its queue, per throughput run.",
    ),
    MetricSpec(
        "throughput_qps", "histogram", "queries/s",
        "repro.parallel.throughput",
        "Completed queries per simulated second, per throughput run.",
    ),
    MetricSpec(
        "mean_latency_ms", "histogram", "ms", "repro.parallel.throughput",
        "Mean query latency under processor-sharing, per throughput run.",
    ),
    MetricSpec(
        "stream_latency_ms", "histogram", "ms", "repro.parallel.events",
        "Per-query latency in the event-driven (FCFS queue) simulation.",
    ),
    MetricSpec(
        "disk_utilization", "histogram", "fraction",
        "repro.parallel.events",
        "Per-disk busy fraction of the run, one sample per disk per run.",
    ),
    MetricSpec(
        "serve_requests_total", "counter", "requests",
        "repro.serve.service",
        "Requests admitted and executed by the serving front door.",
    ),
    MetricSpec(
        "serve_batches_total", "counter", "batches", "repro.serve.service",
        "Batches flushed by the admission scheduler.",
    ),
    MetricSpec(
        "serve_batch_size", "histogram", "requests/batch",
        "repro.serve.service",
        "Requests coalesced per flushed batch.",
    ),
    MetricSpec(
        "serve_queue_wait_ms", "histogram", "ms", "repro.serve.service",
        "Per-request queueing delay: admission to batch flush.",
    ),
    MetricSpec(
        "serve_latency_ms", "histogram", "ms", "repro.serve.service",
        "Per-request end-to-end latency: admission to batch completion "
        "under the busiest-disk service-time model.",
    ),
    MetricSpec(
        "serve_batch_service_ms", "histogram", "ms", "repro.serve.service",
        "Simulated service time per batch (busiest disk's page total x "
        "page service time).",
    ),
    MetricSpec(
        "cache_hit_ratio", "derived", "fraction", "repro.obs.export",
        "cache_hits_total / (cache_hits_total + cache_misses_total); "
        "computed at export time, never stored.",
    ),
)


def catalogue_names() -> Tuple[str, ...]:
    """Every declared metric name, in catalogue order."""
    return tuple(spec.name for spec in METRIC_CATALOGUE)


def spec_for(name: str) -> Optional[MetricSpec]:
    """The catalogue entry for ``name`` (None when undeclared)."""
    for spec in METRIC_CATALOGUE:
        if spec.name == name:
            return spec
    return None


class Counter:
    """A monotonically increasing integer metric."""

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount}")
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Counter({self.name!r}, value={self.value})"


class VectorCounter:
    """A counter with one integer cell per disk (grows on demand)."""

    def __init__(self, name: str):
        self.name = name
        self.values: List[int] = []

    def inc(self, index: int, amount: int = 1) -> None:
        """Add ``amount`` to cell ``index`` (grows the vector if needed)."""
        if index < 0:
            raise ValueError(f"index must be >= 0, got {index}")
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount}")
        if index >= len(self.values):
            self.values.extend([0] * (index + 1 - len(self.values)))
        self.values[index] += amount

    @property
    def total(self) -> int:
        """Sum over all cells."""
        return sum(self.values)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"VectorCounter({self.name!r}, values={self.values})"


class Histogram:
    """A value distribution; keeps every sample (workloads are small)."""

    def __init__(self, name: str):
        self.name = name
        self.samples: List[float] = []

    def record(self, value: float) -> None:
        """Append one sample."""
        self.samples.append(float(value))

    @property
    def count(self) -> int:
        """Number of recorded samples."""
        return len(self.samples)

    @property
    def total(self) -> float:
        """Sum of all samples."""
        return float(sum(self.samples))

    @property
    def mean(self) -> float:
        """Arithmetic mean (0.0 when empty)."""
        return self.total / self.count if self.samples else 0.0

    @property
    def min(self) -> float:
        """Smallest sample (0.0 when empty)."""
        return min(self.samples) if self.samples else 0.0

    @property
    def max(self) -> float:
        """Largest sample (0.0 when empty)."""
        return max(self.samples) if self.samples else 0.0

    def quantile(self, q: float) -> float:
        """Nearest-rank ``q``-quantile of the samples (0.0 when empty)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self.samples:
            return 0.0
        ordered = sorted(self.samples)
        rank = max(0, math.ceil(q * len(ordered)) - 1)
        return ordered[rank]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Histogram({self.name!r}, count={self.count})"


class MetricsRegistry:
    """Get-or-create store of named counters/vectors/histograms.

    With ``strict=True`` (the default) every metric name must appear in
    :data:`METRIC_CATALOGUE` with the matching kind — creating an
    undocumented metric raises, which is the invariant the docs-drift CI
    check builds on.  Pass ``strict=False`` for ad-hoc experiments.
    """

    def __init__(self, strict: bool = True):
        self.strict = strict
        self._counters: Dict[str, Counter] = {}
        self._vectors: Dict[str, VectorCounter] = {}
        self._histograms: Dict[str, Histogram] = {}

    def _check(self, name: str, kind: str) -> None:
        if not self.strict:
            return
        spec = spec_for(name)
        if spec is None:
            raise KeyError(
                f"metric {name!r} is not in METRIC_CATALOGUE; declare it "
                f"in repro/obs/metrics.py (and regenerate "
                f"docs/observability.md) or use MetricsRegistry("
                f"strict=False)"
            )
        if spec.kind != kind:
            raise ValueError(
                f"metric {name!r} is declared as {spec.kind!r}, "
                f"requested as {kind!r}"
            )

    def counter(self, name: str) -> Counter:
        """Get or create the counter ``name``."""
        if name not in self._counters:
            self._check(name, "counter")
            self._counters[name] = Counter(name)
        return self._counters[name]

    def vector_counter(self, name: str) -> VectorCounter:
        """Get or create the per-disk vector counter ``name``."""
        if name not in self._vectors:
            self._check(name, "vector")
            self._vectors[name] = VectorCounter(name)
        return self._vectors[name]

    def histogram(self, name: str) -> Histogram:
        """Get or create the histogram ``name``."""
        if name not in self._histograms:
            self._check(name, "histogram")
            self._histograms[name] = Histogram(name)
        return self._histograms[name]

    def names(self) -> Tuple[str, ...]:
        """Names of every metric instantiated so far, sorted."""
        return tuple(
            sorted(
                list(self._counters)
                + list(self._vectors)
                + list(self._histograms)
            )
        )

    @property
    def counters(self) -> Dict[str, Counter]:
        """Live counter instances by name (do not mutate the dict)."""
        return self._counters

    @property
    def vectors(self) -> Dict[str, VectorCounter]:
        """Live vector-counter instances by name."""
        return self._vectors

    @property
    def histograms(self) -> Dict[str, Histogram]:
        """Live histogram instances by name."""
        return self._histograms

    def cache_hit_ratio(self) -> Optional[float]:
        """The derived ``cache_hit_ratio`` (None before any lookup)."""
        hits = self._counters.get("cache_hits_total")
        misses = self._counters.get("cache_misses_total")
        if hits is None and misses is None:
            return None
        total = (hits.value if hits else 0) + (misses.value if misses else 0)
        if total == 0:
            return 0.0
        return (hits.value if hits else 0) / total

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready snapshot of every instantiated metric."""
        payload: Dict[str, Any] = {
            "counters": {
                name: counter.value
                for name, counter in sorted(self._counters.items())
            },
            "vectors": {
                name: list(vector.values)
                for name, vector in sorted(self._vectors.items())
            },
            "histograms": {
                name: {
                    "count": histogram.count,
                    "total": histogram.total,
                    "mean": histogram.mean,
                    "min": histogram.min,
                    "max": histogram.max,
                    "p50": histogram.quantile(0.5),
                    "p95": histogram.quantile(0.95),
                }
                for name, histogram in sorted(self._histograms.items())
            },
        }
        ratio = self.cache_hit_ratio()
        if ratio is not None:
            payload["derived"] = {"cache_hit_ratio": ratio}
        return payload
