"""Structured query tracing: spans and events with latency-model clocks.

The paper's claims are statements about *per-disk access distributions*
("the disk which accesses most pages ... determines the search time"),
so the unit of observability here is the page-granular event stream of
one query:

``query_start``
    a kNN/window query span opens (engine, mode, ``k``, disk count);
``node_visit``
    the best-first search pops one index node (directory or data page);
``page_read``
    pages are charged to a disk — by construction a **cache miss** when
    a buffer pool is attached, and exactly the quantity the
    :class:`~repro.parallel.disks.DiskArray` counts;
``cache_hit`` / ``cache_miss``
    a buffer-pool lookup (see :mod:`repro.parallel.cache`); every
    ``cache_miss`` is followed by the ``page_read`` it causes;
``prune``
    a subtree is skipped because its MBR cannot intersect the current
    kNN sphere (neighbor-rank pruning);
``query_end``
    the span closes, carrying the per-disk totals and the busiest-disk
    time;
``query_arrival`` / ``query_completion``
    stream-level events emitted by the event-driven simulator.

Timestamps are **latency-model** times, not wall-clock: a ``page_read``
on disk *i* is stamped with the simulated time at which disk *i*
finishes that read (cumulative pages on that disk within the query times
the page service time) — i.e. the same service-time model the engines
use for ``parallel_time_ms``.

:class:`NullTracer` (singleton :data:`NULL_TRACER`) is the default
everywhere: every method is a no-op and ``enabled`` is False, so the
engines skip event construction entirely and the paper's counters are
reproduced bit-for-bit.  :class:`RecordingTracer` collects
:class:`TraceEvent` records in memory and optionally publishes into a
:class:`~repro.obs.metrics.MetricsRegistry`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

from repro.obs.metrics import MetricsRegistry

__all__ = [
    "EVENT_KINDS",
    "TraceEvent",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "RecordingTracer",
]

#: The complete event vocabulary (see docs/observability.md).
EVENT_KINDS = (
    "query_start",
    "node_visit",
    "page_read",
    "cache_hit",
    "cache_miss",
    "prune",
    "query_end",
    "query_arrival",
    "query_completion",
    "serve_enqueue",
    "serve_flush",
    "serve_complete",
)

_CORE_FIELDS = ("seq", "t_ms", "kind", "query", "disk", "pages")


@dataclass(frozen=True)
class TraceEvent:
    """One structured trace record.

    ``seq`` is a global emission counter (stable sort key), ``t_ms`` the
    latency-model timestamp, ``query`` the span id (-1 for events outside
    any query span), ``disk`` the disk involved (-1 when not
    disk-specific) and ``pages`` the page quantity moved (0 for purely
    logical events).  ``data`` carries kind-specific extras
    (e.g. ``engine``/``mode``/``k`` on ``query_start``).
    """

    seq: int
    t_ms: float
    kind: str
    query: int = -1
    disk: int = -1
    pages: int = 0
    data: Mapping[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """Flat dict with stable key order (core fields, then extras)."""
        record: Dict[str, Any] = {
            name: getattr(self, name) for name in _CORE_FIELDS
        }
        for key in sorted(self.data):
            record[key] = self.data[key]
        return record


class Tracer:
    """No-op tracing interface; every engine accepts one.

    Subclasses override the hooks they care about.  Engines guard every
    emission with ``if tracer.enabled:`` so a disabled tracer costs one
    attribute read per instrumented site and allocates nothing.
    """

    #: False on the null tracer; engines skip all emission when False.
    enabled: bool = False

    def begin_query(
        self,
        engine: str,
        k: int = 0,
        num_disks: int = 1,
        mode: Optional[str] = None,
        service_ms: float = 1.0,
    ) -> int:
        """Open a query span; returns the span id (``-1`` when no-op)."""
        return -1

    def end_query(
        self,
        query: int,
        time_ms: float = 0.0,
        distance_computations: int = 0,
    ) -> None:
        """Close a query span, recording its aggregate costs."""

    def node_visit(self, query: int, disk: int, leaf: bool) -> None:
        """Best-first search popped one node (data page when ``leaf``)."""

    def page_read(self, query: int, disk: int, pages: int) -> None:
        """``pages`` pages were charged to ``disk`` (a disk access)."""

    def cache_hit(self, query: int, disk: int, pages: int) -> None:
        """A buffer-pool request was served from RAM (no disk charge)."""

    def cache_miss(self, query: int, disk: int, pages: int) -> None:
        """A buffer-pool request missed; a ``page_read`` follows."""

    def prune(self, query: int, disk: int = -1, count: int = 1) -> None:
        """``count`` subtrees were skipped by the kNN pruning bound."""

    def record(
        self,
        kind: str,
        query: int = -1,
        disk: int = -1,
        pages: int = 0,
        t_ms: Optional[float] = None,
        **data: Any,
    ) -> None:
        """Emit a free-form event (used by the stream simulators)."""


class NullTracer(Tracer):
    """The zero-overhead default: drops everything (``enabled`` False)."""


#: Shared no-op tracer instance used as every engine's default.
NULL_TRACER = NullTracer()


class _QuerySpan:
    """Book-keeping of one open query span."""

    __slots__ = ("service_ms", "pages_per_disk", "clock_ms")

    def __init__(self, service_ms: float):
        self.service_ms = service_ms
        self.pages_per_disk: Dict[int, int] = {}
        self.clock_ms = 0.0


class RecordingTracer(Tracer):
    """Collects :class:`TraceEvent` records, optionally feeding metrics.

    Parameters
    ----------
    metrics:
        A :class:`~repro.obs.metrics.MetricsRegistry` to publish
        counters/histograms into (None records events only).

    The tracer keeps a per-span latency-model clock: within a query,
    each ``page_read`` advances its disk's simulated time by
    ``pages * service_ms`` (``service_ms`` is supplied by the engine at
    :meth:`begin_query`), and non-I/O events are stamped with the
    busiest-disk time so far — the paper's elapsed-time model.
    """

    enabled = True

    def __init__(self, metrics: Optional[MetricsRegistry] = None):
        self.events: List[TraceEvent] = []
        self.metrics = metrics
        self._seq = itertools.count()
        self._query_ids = itertools.count()
        self._spans: Dict[int, _QuerySpan] = {}

    # ------------------------------------------------------------ emission

    def _emit(
        self,
        kind: str,
        query: int,
        disk: int,
        pages: int,
        t_ms: float,
        data: Optional[Mapping[str, Any]] = None,
    ) -> TraceEvent:
        event = TraceEvent(
            seq=next(self._seq),
            t_ms=round(float(t_ms), 6),
            kind=kind,
            query=query,
            disk=disk,
            pages=pages,
            data=dict(data) if data else {},
        )
        self.events.append(event)
        return event

    def _span_clock(self, query: int) -> float:
        span = self._spans.get(query)
        return span.clock_ms if span is not None else 0.0

    # ------------------------------------------------------------ span API

    def begin_query(
        self,
        engine: str,
        k: int = 0,
        num_disks: int = 1,
        mode: Optional[str] = None,
        service_ms: float = 1.0,
    ) -> int:
        """Open a span; emits ``query_start`` and counts ``queries_total``."""
        query = next(self._query_ids)
        self._spans[query] = _QuerySpan(service_ms)
        data: Dict[str, Any] = {
            "engine": engine,
            "k": k,
            "num_disks": num_disks,
        }
        if mode is not None:
            data["mode"] = mode
        self._emit("query_start", query, -1, 0, 0.0, data)
        if self.metrics is not None:
            self.metrics.counter("queries_total").inc()
        return query

    def end_query(
        self,
        query: int,
        time_ms: float = 0.0,
        distance_computations: int = 0,
    ) -> None:
        """Close the span; emits ``query_end`` with per-span totals."""
        span = self._spans.pop(query, None)
        pages = span.pages_per_disk if span is not None else {}
        total = sum(pages.values())
        busiest_disk, busiest = -1, 0
        for disk, count in sorted(pages.items()):
            if count > busiest:
                busiest_disk, busiest = disk, count
        t_ms = span.clock_ms if span is not None else 0.0
        self._emit(
            "query_end", query, busiest_disk, total, t_ms,
            {
                "max_pages": busiest,
                "time_ms": round(float(time_ms), 6),
                "distance_computations": distance_computations,
            },
        )
        if self.metrics is not None:
            self.metrics.histogram("query_total_pages").record(total)
            self.metrics.histogram("busiest_disk_pages").record(busiest)
            if total:
                self.metrics.histogram("busiest_disk_share").record(
                    busiest / total
                )
            self.metrics.histogram("query_time_ms").record(float(time_ms))
            self.metrics.counter("distance_computations_total").inc(
                distance_computations
            )

    # ----------------------------------------------------------- event API

    def node_visit(self, query: int, disk: int, leaf: bool) -> None:
        """Emit ``node_visit``; counts ``nodes_visited_total``."""
        self._emit(
            "node_visit", query, disk, 0, self._span_clock(query),
            {"leaf": leaf},
        )
        if self.metrics is not None:
            self.metrics.counter("nodes_visited_total").inc()

    def page_read(self, query: int, disk: int, pages: int) -> None:
        """Advance ``disk``'s span clock and emit ``page_read``."""
        span = self._spans.get(query)
        if span is not None:
            on_disk = span.pages_per_disk.get(disk, 0) + pages
            span.pages_per_disk[disk] = on_disk
            t_ms = on_disk * span.service_ms
            span.clock_ms = max(span.clock_ms, t_ms)
        else:
            t_ms = 0.0
        self._emit("page_read", query, disk, pages, t_ms)
        if self.metrics is not None:
            self.metrics.counter("pages_read_total").inc(pages)
            self.metrics.vector_counter("pages_read_per_disk").inc(
                disk, pages
            )

    def cache_hit(self, query: int, disk: int, pages: int) -> None:
        """Emit ``cache_hit``; counts hit totals (no clock advance)."""
        self._emit(
            "cache_hit", query, disk, pages, self._span_clock(query)
        )
        if self.metrics is not None:
            self.metrics.counter("cache_hits_total").inc()
            self.metrics.vector_counter("cache_hits_per_disk").inc(disk)

    def cache_miss(self, query: int, disk: int, pages: int) -> None:
        """Emit ``cache_miss``; the matching ``page_read`` follows."""
        self._emit(
            "cache_miss", query, disk, pages, self._span_clock(query)
        )
        if self.metrics is not None:
            self.metrics.counter("cache_misses_total").inc()
            self.metrics.vector_counter("cache_misses_per_disk").inc(disk)

    def prune(self, query: int, disk: int = -1, count: int = 1) -> None:
        """Emit ``prune``; counts ``buckets_pruned_total``."""
        self._emit(
            "prune", query, disk, 0, self._span_clock(query),
            {"count": count},
        )
        if self.metrics is not None:
            self.metrics.counter("buckets_pruned_total").inc(count)

    def record(
        self,
        kind: str,
        query: int = -1,
        disk: int = -1,
        pages: int = 0,
        t_ms: Optional[float] = None,
        **data: Any,
    ) -> None:
        """Emit a free-form event (simulator arrivals/completions)."""
        stamp = t_ms if t_ms is not None else self._span_clock(query)
        self._emit(kind, query, disk, pages, stamp, data)

    # ----------------------------------------------------------- accessors

    def pages_per_disk(self, num_disks: Optional[int] = None) -> List[int]:
        """Per-disk page totals summed over every ``page_read`` event.

        The oracle contract: this equals the sum of the engines'
        :class:`~repro.parallel.disks.DiskArray` counters bit-for-bit.
        """
        totals: Dict[int, int] = {}
        for event in self.events:
            if event.kind == "page_read":
                totals[event.disk] = totals.get(event.disk, 0) + event.pages
        size = num_disks if num_disks is not None else (
            max(totals) + 1 if totals else 0
        )
        return [totals.get(disk, 0) for disk in range(size)]

    def clear(self) -> None:
        """Drop all recorded events (open spans survive)."""
        self.events.clear()

    def __len__(self) -> int:
        return len(self.events)
