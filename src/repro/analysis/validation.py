"""Validation of the analytical cost model against the simulator.

The [BBKK 97]-style formulas in :mod:`repro.analysis.cost_model` predict
NN radii and page counts from first principles; this module measures the
same quantities on concrete data and reports prediction ratios.  Useful
both as a sanity check of the model (tested) and as a calibration aid when
using :mod:`repro.analysis` for capacity planning.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.analysis.cost_model import (
    expected_nn_distance,
    expected_pages_touched,
)
from repro.data import uniform_points
from repro.index.bulk import bulk_load
from repro.index.knn import knn_best_first, knn_linear_scan
from repro.index.node import leaf_capacity

__all__ = ["ModelCheck", "validate_cost_model"]


@dataclass(frozen=True)
class ModelCheck:
    """Prediction vs. measurement for one configuration."""

    dimension: int
    num_points: int
    k: int
    predicted_radius: float
    measured_radius: float
    predicted_pages: float
    measured_pages: float

    @property
    def radius_ratio(self) -> float:
        """Predicted / measured NN radius (1.0 = perfect)."""
        return self.predicted_radius / max(self.measured_radius, 1e-12)

    @property
    def pages_ratio(self) -> float:
        """Predicted / measured pages (1.0 = perfect)."""
        return self.predicted_pages / max(self.measured_pages, 1e-12)


def validate_cost_model(
    dimensions: Sequence[int] = (2, 4, 8),
    num_points: int = 20_000,
    k: int = 10,
    num_queries: int = 20,
    seed: int = 0,
) -> list:
    """Measure NN radii and touched pages against the model's predictions.

    Returns one :class:`ModelCheck` per dimension.  The sphere-volume
    model ignores boundary effects, so it *underestimates* radii (and
    hence pages) increasingly as the dimension grows — the checks in the
    test suite pin down that known, one-sided bias.
    """
    checks = []
    for dimension in dimensions:
        points = uniform_points(num_points, dimension, seed=seed + dimension)
        queries = uniform_points(num_queries, dimension, seed=seed + 999)
        tree = bulk_load(points)
        radii = []
        pages = []
        for query in queries:
            result = knn_linear_scan(points, query, k)
            radii.append(result[-1].distance)
            _, stats = knn_best_first(tree, query, k)
            pages.append(stats.leaf_accesses)
        checks.append(
            ModelCheck(
                dimension=dimension,
                num_points=num_points,
                k=k,
                predicted_radius=expected_nn_distance(num_points, dimension,
                                                      k),
                measured_radius=float(np.mean(radii)),
                predicted_pages=expected_pages_touched(
                    num_points, dimension, leaf_capacity(dimension), k
                ),
                measured_pages=float(np.mean(pages)),
            )
        )
    return checks
