"""Analytical models: [BBKK 97] cost model, quadrant-neighborhood math."""

from __future__ import annotations

from repro.analysis.cost_model import (
    expected_nn_distance,
    expected_pages_touched,
    monte_carlo_surface_probability,
    nn_distance_sample,
    surface_probability,
    unit_sphere_volume,
)
from repro.analysis.neighbors import (
    bucket_mindist,
    buckets_intersecting_sphere,
    crossed_dimensions,
    neighborhood_size,
)

__all__ = [
    "bucket_mindist",
    "buckets_intersecting_sphere",
    "crossed_dimensions",
    "expected_nn_distance",
    "expected_pages_touched",
    "monte_carlo_surface_probability",
    "neighborhood_size",
    "nn_distance_sample",
    "surface_probability",
    "unit_sphere_volume",
]
