"""Quadrant-neighborhood analysis: hamming balls and sphere intersections.

Supports the paper's Section 3 arguments:

* how many buckets are within ``i`` levels of (in)direction of a bucket
  (the combinatorial explosion that limits Definition 3 to two levels);
* which buckets a query sphere intersects (Figure 6's growing-sphere
  picture), exactly and by Monte-Carlo.
"""

from __future__ import annotations

import math
from typing import List, Sequence

import numpy as np

from repro.core.bits import bucket_coordinates

__all__ = [
    "neighborhood_size",
    "buckets_intersecting_sphere",
    "crossed_dimensions",
    "bucket_mindist",
]


def neighborhood_size(dimension: int, levels: int) -> int:
    """Buckets within ``levels`` bit-flips of a bucket (excluding itself).

    The paper's Section 3.1: ``sum_{k=1..levels} C(d, k)`` — for two levels
    of indirection in d = 16 this is already 696, which is why the
    near-optimality definition stops at indirect (2-bit) neighbors.
    """
    if dimension < 1:
        raise ValueError(f"dimension must be >= 1, got {dimension}")
    if not 0 <= levels <= dimension:
        raise ValueError(f"levels must be in [0, {dimension}], got {levels}")
    return sum(math.comb(dimension, k) for k in range(1, levels + 1))


def bucket_mindist(
    bucket: int,
    query: np.ndarray,
    split_values: np.ndarray,
) -> float:
    """Squared distance from ``query`` to the quadrant ``bucket``.

    The quadrant spans ``[0, split)`` or ``[split, 1]`` per dimension,
    according to the bucket's coordinate bits.
    """
    query = np.asarray(query, dtype=float)
    split_values = np.asarray(split_values, dtype=float)
    dimension = len(query)
    coords = np.array(bucket_coordinates(bucket, dimension))
    low = np.where(coords == 1, split_values, 0.0)
    high = np.where(coords == 1, 1.0, split_values)
    gap = np.maximum(np.maximum(low - query, query - high), 0.0)
    return float(gap @ gap)


def crossed_dimensions(
    query: np.ndarray, radius: float, split_values: np.ndarray
) -> List[int]:
    """Dimensions whose split plane lies within ``radius`` of the query."""
    query = np.asarray(query, dtype=float)
    split_values = np.asarray(split_values, dtype=float)
    return [
        int(i)
        for i in np.nonzero(np.abs(query - split_values) < radius)[0]
    ]


def buckets_intersecting_sphere(
    query: Sequence[float],
    radius: float,
    split_values: Sequence[float],
) -> List[int]:
    """All quadrant buckets the sphere ``(query, radius)`` intersects.

    A quadrant is intersected iff its mindist to the query is below
    ``radius^2``; only dimensions whose split plane is within ``radius``
    can flip, so the search enumerates ``2^(#crossed dims)`` candidates
    rather than ``2^d`` (Figure 6's geometry).
    """
    query = np.asarray(query, dtype=float)
    split_values = np.asarray(split_values, dtype=float)
    if radius < 0:
        raise ValueError(f"radius must be >= 0, got {radius}")
    dimension = len(query)
    home = 0
    for i in range(dimension):
        if query[i] >= split_values[i]:
            home |= 1 << i
    crossed = crossed_dimensions(query, radius, split_values)
    sq_radius = radius * radius
    result = []
    for mask_bits in range(1 << len(crossed)):
        bucket = home
        for position, dim in enumerate(crossed):
            if mask_bits >> position & 1:
                bucket ^= 1 << dim
        if bucket_mindist(bucket, query, split_values) <= sq_radius:
            result.append(bucket)
    return sorted(result)
