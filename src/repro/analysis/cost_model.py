"""Analytical cost model for high-dimensional NN search [BBKK 97].

Section 3.1 of the paper leans on its companion cost model: the NN-sphere
radius grows quickly with dimension, the number of pages any sequential
algorithm must access grows with it, and almost all data sits near the
(d-1)-dimensional surface of the data space.  This module provides those
quantities in closed form (plus Monte-Carlo verification helpers used by
the tests and the Figure 5/6 benches).

All formulas assume N uniformly distributed points in ``[0, 1]^d`` and
Euclidean distance.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "unit_sphere_volume",
    "expected_nn_distance",
    "surface_probability",
    "monte_carlo_surface_probability",
    "expected_pages_touched",
    "nn_distance_sample",
]


def unit_sphere_volume(dimension: int) -> float:
    """Volume of the d-dimensional unit ball, ``pi^{d/2} / Gamma(d/2+1)``."""
    if dimension < 1:
        raise ValueError(f"dimension must be >= 1, got {dimension}")
    return math.pi ** (dimension / 2.0) / math.gamma(dimension / 2.0 + 1.0)


def expected_nn_distance(num_points: int, dimension: int, k: int = 1) -> float:
    """Expected k-NN distance for uniform data (sphere-volume argument).

    The radius at which a ball around the query is expected to contain
    ``k`` of the ``num_points`` points:
    ``r = (k / (N * V_d(1)))^(1/d)``.  Boundary effects make this an
    underestimate in high dimensions (where the true sphere leaves the data
    space); it still captures the rapid growth with ``d`` that motivates
    the paper.
    """
    if num_points < 1:
        raise ValueError(f"num_points must be >= 1, got {num_points}")
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    return (k / (num_points * unit_sphere_volume(dimension))) ** (
        1.0 / dimension
    )


def surface_probability(dimension: int, margin: float = 0.1) -> float:
    """P(point lies within ``margin`` of the data-space surface).

    Equation (1) of the paper (Figure 5):
    ``p_surface(d) = 1 - (1 - 2*margin)^d`` — with the default margin 0.1
    this exceeds 97% already at d = 16.
    """
    if not 0.0 < margin < 0.5:
        raise ValueError(f"margin must be in (0, 0.5), got {margin}")
    return 1.0 - (1.0 - 2.0 * margin) ** dimension


def monte_carlo_surface_probability(
    dimension: int, margin: float = 0.1, samples: int = 100_000, seed: int = 0
) -> float:
    """Monte-Carlo estimate of :func:`surface_probability`."""
    rng = np.random.default_rng(seed)
    points = rng.random((samples, dimension))
    near = ((points < margin) | (points > 1.0 - margin)).any(axis=1)
    return float(near.mean())


def expected_pages_touched(
    num_points: int,
    dimension: int,
    page_capacity: int,
    k: int = 1,
) -> float:
    """Rough Minkowski-sum estimate of data pages hit by a k-NN query.

    Pages are modeled as hypercubes of volume ``page_capacity / N``; a page
    is touched when its cube is within the NN radius of the query, i.e.
    with probability ``min(1, (s + 2r)^d)`` where ``s`` is the page side.
    Coarse but captures the explosion with ``d`` shown in Figure 1.
    """
    if page_capacity < 1:
        raise ValueError(f"page_capacity must be >= 1, got {page_capacity}")
    radius = expected_nn_distance(num_points, dimension, k)
    side = (page_capacity / num_points) ** (1.0 / dimension)
    num_pages = num_points / page_capacity
    fraction = min(1.0, (side + 2.0 * radius) ** dimension)
    return num_pages * fraction


def nn_distance_sample(
    num_points: int,
    dimension: int,
    k: int = 1,
    queries: int = 50,
    seed: int = 0,
) -> float:
    """Empirical mean k-NN distance on uniform data (oracle check)."""
    rng = np.random.default_rng(seed)
    points = rng.random((num_points, dimension))
    query_points = rng.random((queries, dimension))
    distances = np.empty(queries)
    for index, query in enumerate(query_points):
        deltas = points - query
        sq = np.einsum("ij,ij->i", deltas, deltas)
        distances[index] = math.sqrt(np.partition(sq, k - 1)[k - 1])
    return float(distances.mean())
