"""d-dimensional Hilbert space-filling curve (substrate for [FB 93])."""

from __future__ import annotations

from repro.hilbert.curve import HilbertCurve

__all__ = ["HilbertCurve"]
