"""d-dimensional Hilbert space-filling curve.

The Hilbert declustering baseline [FB 93] maps a grid cell to a disk via the
cell's position along the Hilbert curve.  This module implements the curve
itself for arbitrary dimension ``d`` and order ``p`` (``p`` bits of
resolution per dimension) using John Skilling's transpose algorithm
("Programming the Hilbert curve", AIP Conf. Proc. 707, 2004), which converts
between coordinates and the curve index in ``O(d * p)`` bit operations
without lookup tables.

The two directions are exact inverses, and consecutive indices map to cells
at Manhattan distance 1 — both properties are enforced by the test suite.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

__all__ = ["HilbertCurve"]


class HilbertCurve:
    """Hilbert curve over the ``(2^order)^dimension`` integer grid.

    Parameters
    ----------
    dimension:
        Number of dimensions ``d >= 1``.
    order:
        Bits of resolution per dimension ``p >= 1``; coordinates range over
        ``[0, 2^order)`` and indices over ``[0, 2^(order * dimension))``.
    """

    def __init__(self, dimension: int, order: int):
        if dimension < 1:
            raise ValueError(f"dimension must be >= 1, got {dimension}")
        if order < 1:
            raise ValueError(f"order must be >= 1, got {order}")
        self.dimension = dimension
        self.order = order
        self.side = 1 << order
        self.length = 1 << (order * dimension)

    # ------------------------------------------------------------- public

    def index_of(self, coordinates: Sequence[int]) -> int:
        """Hilbert index of a grid cell.

        >>> curve = HilbertCurve(dimension=2, order=1)
        >>> [curve.index_of(c) for c in [(0, 0), (0, 1), (1, 1), (1, 0)]]
        [0, 1, 2, 3]
        """
        transpose = self._axes_to_transpose(self._validated(coordinates))
        return self._transpose_to_index(transpose)

    def coordinates_of(self, index: int) -> Tuple[int, ...]:
        """Grid cell of a Hilbert index; inverse of :meth:`index_of`."""
        if not 0 <= index < self.length:
            raise ValueError(
                f"index {index} outside [0, {self.length}) for "
                f"d={self.dimension}, order={self.order}"
            )
        transpose = self._index_to_transpose(index)
        return tuple(self._transpose_to_axes(transpose))

    # ---------------------------------------------------- transpose <-> h

    def _transpose_to_index(self, transpose: Sequence[int]) -> int:
        """Interleave transpose bits, MSB-first across dimensions."""
        index = 0
        for bit in range(self.order - 1, -1, -1):
            for value in transpose:
                index = (index << 1) | ((value >> bit) & 1)
        return index

    def _index_to_transpose(self, index: int) -> List[int]:
        """Inverse of :meth:`_transpose_to_index`."""
        transpose = [0] * self.dimension
        position = self.order * self.dimension - 1
        for _ in range(self.order):
            for axis in range(self.dimension):
                transpose[axis] = (
                    (transpose[axis] << 1) | ((index >> position) & 1)
                )
                position -= 1
        return transpose

    # ------------------------------------------------- Skilling transforms

    def _transpose_to_axes(self, x: List[int]) -> List[int]:
        """In-place transposed-index -> coordinates (Skilling, decode)."""
        n, p = self.dimension, self.order
        # Gray decode by H ^ (H/2).
        t = x[n - 1] >> 1
        for i in range(n - 1, 0, -1):
            x[i] ^= x[i - 1]
        x[0] ^= t
        # Undo excess work.
        q = 2
        while q != (2 << (p - 1)):
            mask = q - 1
            for i in range(n - 1, -1, -1):
                if x[i] & q:
                    x[0] ^= mask
                else:
                    t = (x[0] ^ x[i]) & mask
                    x[0] ^= t
                    x[i] ^= t
            q <<= 1
        return x

    def _axes_to_transpose(self, x: List[int]) -> List[int]:
        """In-place coordinates -> transposed index (Skilling, encode)."""
        n, p = self.dimension, self.order
        m = 1 << (p - 1)
        # Inverse undo excess work.
        q = m
        while q > 1:
            mask = q - 1
            for i in range(n):
                if x[i] & q:
                    x[0] ^= mask
                else:
                    t = (x[0] ^ x[i]) & mask
                    x[0] ^= t
                    x[i] ^= t
            q >>= 1
        # Gray encode.
        for i in range(1, n):
            x[i] ^= x[i - 1]
        t = 0
        q = m
        while q > 1:
            if x[n - 1] & q:
                t ^= q - 1
            q >>= 1
        for i in range(n):
            x[i] ^= t
        return x

    # -------------------------------------------------------------- misc

    def _validated(self, coordinates: Sequence[int]) -> List[int]:
        values = list(coordinates)
        if len(values) != self.dimension:
            raise ValueError(
                f"expected {self.dimension} coordinates, got {len(values)}"
            )
        for axis, value in enumerate(values):
            if not 0 <= value < self.side:
                raise ValueError(
                    f"coordinate {value} of axis {axis} outside "
                    f"[0, {self.side}) at order {self.order}"
                )
        return values

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"HilbertCurve(dimension={self.dimension}, order={self.order})"
