"""Repository-root pytest configuration.

``pytest_plugins`` must be declared at the rootdir (pytest deprecated
non-root declarations), so the determinism-sanitizer fixture is
registered here rather than in ``tests/conftest.py``.
"""

pytest_plugins = ["repro.sanitize.pytest_plugin"]
